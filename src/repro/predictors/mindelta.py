"""Palacharla & Kessler's minimum-delta non-unit stride detection.

Section 3.3.2 of the paper: memory is divided into fixed-size regions
("chunks"), each associated with a dynamic stride computed as the
minimum signed difference between the current miss address and the past
N miss addresses in that region.  If the minimum delta is smaller than
the L1 block, the stride is one block (with the delta's sign); otherwise
the stride is the minimum delta itself.

The paper reports this scheme is "uniformly outperformed" by the
per-load (PC-indexed) stride detector of Farkas et al.; implementing it
lets the benchmark harness re-verify that claim
(``benchmarks/bench_ablation_prior_prefetchers.py``).
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Optional

from repro.predictors.base import AddressPredictor, StreamState


class _RegionEntry:
    """Miss history and detected stride for one memory region."""

    __slots__ = ("history", "stride", "misses")

    def __init__(self, depth: int) -> None:
        self.history: Deque[int] = deque(maxlen=depth)
        self.stride = 0
        self.misses = 0


class MinimumDeltaPredictor(AddressPredictor):
    """Region-indexed dynamic stride detection (global miss history)."""

    def __init__(
        self,
        block_size: int = 32,
        region_bytes: int = 4096,
        history_depth: int = 4,
        table_entries: int = 256,
    ) -> None:
        if region_bytes <= 0 or block_size <= 0:
            raise ValueError("region and block sizes must be positive")
        self.block_size = block_size
        self.region_bytes = region_bytes
        self.history_depth = history_depth
        self.table_entries = table_entries
        self._regions: OrderedDict = OrderedDict()  # region id -> entry
        self.trains = 0

    def _region_of(self, address: int) -> int:
        return address // self.region_bytes

    def _entry_for(self, address: int) -> _RegionEntry:
        region = self._region_of(address)
        entry = self._regions.get(region)
        if entry is None:
            if len(self._regions) >= self.table_entries:
                self._regions.popitem(last=False)
            entry = _RegionEntry(self.history_depth)
            self._regions[region] = entry
        else:
            self._regions.move_to_end(region)
        return entry

    def _minimum_delta(self, entry: _RegionEntry, address: int) -> int:
        """Smallest-magnitude signed difference to the recent misses."""
        best = 0
        for past in entry.history:
            delta = address - past
            if delta == 0:
                continue
            if best == 0 or abs(delta) < abs(best):
                best = delta
        return best

    def train(self, pc: int, address: int) -> bool:
        """Fold a miss into its region; recompute the dynamic stride."""
        self.trains += 1
        entry = self._entry_for(address)
        entry.misses += 1
        predicted = (
            entry.history[-1] + entry.stride
            if entry.history and entry.stride
            else None
        )
        delta = self._minimum_delta(entry, address)
        if delta != 0:
            if abs(delta) < self.block_size:
                entry.stride = self.block_size if delta > 0 else -self.block_size
            else:
                entry.stride = delta
        entry.history.append(address)
        return predicted == address

    def make_stream_state(self, pc: int, address: int) -> StreamState:
        entry = self._entry_for(address)
        return StreamState(pc, address, stride=entry.stride)

    def next_prediction(self, state: StreamState) -> Optional[int]:
        if state.stride == 0:
            return None
        state.last_address += state.stride
        return state.last_address

    def allocation_ready(self, pc: int) -> bool:
        """P&K's filter needs two consecutive misses to the same stream;
        the controller calls this per-PC, but the scheme is address-based,
        so readiness is approximated as "always" and the region history
        supplies stride quality instead."""
        return True

    def region_stride(self, address: int) -> int:
        """Detected stride of the region containing ``address`` (tests)."""
        region = self._region_of(address)
        entry = self._regions.get(region)
        return entry.stride if entry is not None else 0
