"""Address predictors that can direct a stream buffer (Sections 2 and 4.2).

Any predictor implementing :class:`~repro.predictors.base.AddressPredictor`
can drive a Predictor-Directed Stream Buffer.  The paper's headline
configuration is the Stride-Filtered Markov (SFM) predictor; the pure
two-delta stride table doubles as the Farkas et al. PC-stride baseline.
"""

from repro.predictors.base import AddressPredictor, StreamState
from repro.predictors.context import ContextPredictor
from repro.predictors.correlated import CorrelatedAddressPredictor
from repro.predictors.mindelta import MinimumDeltaPredictor
from repro.predictors.markov import DifferentialMarkovTable, MarkovTable
from repro.predictors.saturating import SaturatingCounter
from repro.predictors.sfm import StrideFilteredMarkovPredictor
from repro.predictors.stride import StrideEntry, TwoDeltaStrideTable

__all__ = [
    "AddressPredictor",
    "StreamState",
    "ContextPredictor",
    "CorrelatedAddressPredictor",
    "MinimumDeltaPredictor",
    "DifferentialMarkovTable",
    "MarkovTable",
    "SaturatingCounter",
    "StrideFilteredMarkovPredictor",
    "StrideEntry",
    "TwoDeltaStrideTable",
]
