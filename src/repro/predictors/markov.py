"""First-order Markov address prediction (Sections 2.2 and 4.2).

Two variants are provided:

- :class:`MarkovTable` stores absolute next addresses, as in Joseph and
  Grunwald's Markov prefetcher.
- :class:`DifferentialMarkovTable` is the paper's space optimization: it
  stores only the *signed difference* between consecutive miss addresses,
  clamped to a configurable bit-width (16 bits captures almost all
  transitions — Figure 4).  With 2 K entries of 16 bits the data store is
  4 KB, the size the paper reports.

The paper does not state the table's organization beyond "2K entries";
we model it set-associative (4-way LRU by default, like the stride
table) with a hashed index, since a direct-mapped table at the load
factors of these benchmarks loses a third of its transitions to
conflicts and the run-ahead prediction chain dies at every hole.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.config import MarkovPredictorConfig
from repro.utils import fits_signed


class _AssociativeStore:
    """Shared machinery: hashed, set-associative, LRU-replaced store."""

    def __init__(self, entries: int, associativity: int) -> None:
        if entries < 1:
            raise ValueError("Markov table needs at least one entry")
        if associativity < 1 or entries % associativity != 0:
            raise ValueError("entries must divide evenly into ways")
        self.entries = entries
        self.associativity = associativity
        self.num_sets = entries // associativity
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]

    def _set_for(self, address: int) -> OrderedDict:
        # Multiplicative hashing, taking the product's *high* bits: block
        # addresses share low-order alignment, and multiplication by an
        # odd constant leaves low bits unmixed, so the top half is what
        # spreads evenly over the sets.
        hashed = (address >> 5) * 0x9E3779B1 & 0xFFFFFFFF
        return self._sets[(hashed >> 16) % self.num_sets]

    def get(self, address: int):
        """Stored value for ``address`` (LRU refresh), or None."""
        table_set = self._set_for(address)
        value = table_set.get(address)
        if value is not None:
            table_set.move_to_end(address)
        return value

    def put(self, address: int, value) -> None:
        table_set = self._set_for(address)
        if address in table_set:
            table_set.move_to_end(address)
        elif len(table_set) >= self.associativity:
            table_set.popitem(last=False)
        table_set[address] = value

    @property
    def occupancy(self) -> int:
        return sum(len(table_set) for table_set in self._sets)


class MarkovTable:
    """Associative table mapping a miss address to its observed successor."""

    def __init__(self, entries: int, associativity: int = 4) -> None:
        self._store = _AssociativeStore(entries, associativity)
        self.entries = entries
        self.trains = 0
        self.lookups = 0
        self.hits = 0

    def train(self, from_address: int, to_address: int) -> None:
        """Record that ``from_address`` was followed by ``to_address``."""
        self.trains += 1
        self._store.put(from_address, to_address)

    def lookup(self, address: int) -> Optional[int]:
        """Predicted successor of ``address``, or None on a table miss."""
        self.lookups += 1
        successor = self._store.get(address)
        if successor is None:
            return None
        self.hits += 1
        return successor

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups


class DifferentialMarkovTable:
    """The paper's differential Markov table: stores signed deltas only.

    A transition whose delta does not fit in ``delta_bits`` signed bits is
    simply not recorded — exactly the trade-off Figure 4 quantifies.  The
    predicted address is reconstructed as ``address + stored_delta``.
    """

    def __init__(self, config: Optional[MarkovPredictorConfig] = None) -> None:
        self.config = config or MarkovPredictorConfig()
        self.entries = self.config.entries
        self.delta_bits = self.config.delta_bits
        self._store = _AssociativeStore(self.entries, self.config.associativity)
        self.trains = 0
        self.trains_out_of_range = 0
        self.lookups = 0
        self.hits = 0

    def train(self, from_address: int, to_address: int) -> None:
        """Record a transition, if its delta fits in ``delta_bits`` bits."""
        self.trains += 1
        delta = to_address - from_address
        if not fits_signed(delta, self.delta_bits):
            self.trains_out_of_range += 1
            return
        self._store.put(from_address, delta)

    def lookup(self, address: int) -> Optional[int]:
        """Predicted successor of ``address``, or None on a table miss."""
        self.lookups += 1
        delta = self._store.get(address)
        if delta is None:
            return None
        self.hits += 1
        return address + delta

    @property
    def hit_rate(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups

    @property
    def data_store_bytes(self) -> int:
        """Size of the delta store (the 4 KB figure from Section 4.2)."""
        return self.entries * self.delta_bits // 8
