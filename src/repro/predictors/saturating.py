"""Saturating counters.

The paper uses saturating counters in three roles: per-load accuracy
confidence (saturates at 7), per-buffer priority (saturates at 12), and
the two-bit adaptivity counters of prior work it discusses.  One class
serves all of them.
"""

from __future__ import annotations


class SaturatingCounter:
    """An integer counter clamped to ``[minimum, maximum]``."""

    __slots__ = ("value", "minimum", "maximum")

    def __init__(self, maximum: int, initial: int = 0, minimum: int = 0) -> None:
        if maximum < minimum:
            raise ValueError("maximum must be >= minimum")
        if not minimum <= initial <= maximum:
            raise ValueError("initial value outside counter range")
        self.minimum = minimum
        self.maximum = maximum
        self.value = initial

    def increment(self, amount: int = 1) -> int:
        self.value = min(self.maximum, self.value + amount)
        return self.value

    def decrement(self, amount: int = 1) -> int:
        self.value = max(self.minimum, self.value - amount)
        return self.value

    def set(self, value: int) -> None:
        """Clamp ``value`` into range and store it."""
        self.value = max(self.minimum, min(self.maximum, value))

    def at_least(self, threshold: int) -> bool:
        return self.value >= threshold

    def __int__(self) -> int:
        return self.value

    def __repr__(self) -> str:
        return (
            f"SaturatingCounter({self.value} in "
            f"[{self.minimum},{self.maximum}])"
        )
