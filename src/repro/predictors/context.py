"""Order-k context prediction (Section 2.2).

An order-k context predictor hashes the last k addresses into a table
holding the observed successor.  The paper simulated higher-order Markov
predictors and found "little to no improvement in prediction accuracy and
coverage over first order" for its benchmarks; this module exists so that
ablation (``benchmarks/bench_ablation_markov_order.py``) can be rerun.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Optional, Tuple

from repro.predictors.base import AddressPredictor, StreamState


class ContextPredictor(AddressPredictor):
    """Order-k context/Markov predictor over the global miss stream."""

    def __init__(self, order: int = 2, entries: int = 4096) -> None:
        if order < 1:
            raise ValueError("context order must be >= 1")
        self.order = order
        self.entries = entries
        self._table: Dict[int, Tuple[Tuple[int, ...], int]] = {}
        self._history: Deque[int] = deque(maxlen=order)
        self.trains = 0
        self.correct_trains = 0
        self.lookups = 0
        self.hits = 0

    def _hash(self, context: Tuple[int, ...]) -> int:
        # Cache-block-aligned addresses share their low bits, so fold the
        # context through a real hash before truncating to the table size.
        return hash(context) % self.entries

    def _lookup_context(self, context: Tuple[int, ...]) -> Optional[int]:
        self.lookups += 1
        slot = self._table.get(self._hash(context))
        if slot is None or slot[0] != context:
            return None
        self.hits += 1
        return slot[1]

    def train(self, pc: int, address: int) -> bool:
        """Fold one miss address into the global history table."""
        self.trains += 1
        correct = False
        if len(self._history) == self.order:
            context = tuple(self._history)
            predicted = self._lookup_context(context)
            correct = predicted == address
            self._table[self._hash(context)] = (context, address)
        if correct:
            self.correct_trains += 1
        self._history.append(address)
        return correct

    def make_stream_state(self, pc: int, address: int) -> StreamState:
        """Seed the stream's history with the current global history.

        Training for the allocating miss has usually already appended
        ``address`` to the global history; only add it if absent.
        """
        history = list(self._history)
        if not history or history[-1] != address:
            history.append(address)
        return StreamState(pc, address, history=history[-self.order:])

    def next_prediction(self, state: StreamState) -> Optional[int]:
        """Advance using the stream's own speculative history window."""
        if len(state.history) < self.order:
            return None
        context = tuple(state.history[-self.order:])
        slot = self._table.get(self._hash(context))
        if slot is None or slot[0] != context:
            return None
        predicted = slot[1]
        state.history.append(predicted)
        if len(state.history) > self.order:
            del state.history[: len(state.history) - self.order]
        state.last_address = predicted
        return predicted

    @property
    def accuracy(self) -> float:
        if self.trains == 0:
            return 0.0
        return self.correct_trains / self.trains

    @property
    def coverage(self) -> float:
        """Fraction of lookups for which any prediction existed."""
        if self.lookups == 0:
            return 0.0
        return self.hits / self.lookups
