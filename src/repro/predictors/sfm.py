"""The Stride-Filtered Markov (SFM) predictor (Section 4.2).

A two-delta stride table sits in front of a differential Markov table:

- **Training** (write-back, L1 misses only): the load's PC indexes the
  stride table.  If the newly observed stride matches neither the last
  stride nor the two-delta stride, the transition ``last address ->
  current address`` is recorded in the Markov table.  Stride-predictable
  loads therefore never pollute the Markov table — that is the filter.
- **Prediction** (one per cycle, shared by all stream buffers): the
  stream's last address is looked up in the Markov table *and* advanced
  by the stream's fixed stride; a Markov hit wins, otherwise the stride
  address is used.
- **Confidence**: each stride-table entry carries an accuracy counter,
  incremented when a miss matched either component's prediction and
  decremented otherwise.  Stream-buffer allocation copies it (Section 4.3).
"""

from __future__ import annotations

from typing import Optional

from repro.config import MarkovPredictorConfig, StridePredictorConfig
from repro.predictors.base import AddressPredictor, StreamState
from repro.predictors.markov import DifferentialMarkovTable, MarkovTable
from repro.predictors.stride import TwoDeltaStrideTable


class StrideFilteredMarkovPredictor(AddressPredictor):
    """Two-delta stride filter in front of a (differential) Markov table."""

    def __init__(
        self,
        stride_config: Optional[StridePredictorConfig] = None,
        markov_config: Optional[MarkovPredictorConfig] = None,
    ) -> None:
        self.stride_table = TwoDeltaStrideTable(stride_config)
        markov_config = markov_config or MarkovPredictorConfig()
        if markov_config.differential:
            self.markov_table = DifferentialMarkovTable(markov_config)
        else:
            self.markov_table = MarkovTable(markov_config.entries)
        self.trains = 0
        self.correct_trains = 0
        self.markov_predictions = 0
        self.stride_predictions = 0

    # ------------------------------------------------------------------
    # Training (write-back stage, misses only)
    # ------------------------------------------------------------------

    def train(self, pc: int, address: int) -> bool:
        """Observe one L1 data-cache miss; update both tables."""
        self.trains += 1
        entry = self.stride_table.lookup(pc)
        if entry is None:
            self.stride_table._allocate(pc, address)
            return False

        stride_prediction = entry.predicted_address
        markov_prediction = self.markov_table.lookup(entry.last_address)
        correct = address == stride_prediction or (
            markov_prediction is not None and address == markov_prediction
        )
        if correct:
            entry.confidence.increment()
            entry.consecutive_correct += 1
            self.correct_trains += 1
        else:
            entry.confidence.decrement()
            entry.consecutive_correct = 0

        last_address = entry.last_address
        new_stride = address - last_address
        stride_covered = (
            new_stride == entry.last_stride or new_stride == entry.two_delta_stride
        )
        entry.observe(address)
        if not stride_covered:
            # Not stride-predictable: record the transition in the Markov
            # table (the "filter" of Stride-Filtered Markov).
            self.markov_table.train(last_address, address)
        return correct

    def warm(self, pc: int, address: int, full: bool = True) -> bool:
        """Fast-forward observation; ``full=False`` detunes confidence.

        The stride entry's address state and the Markov transition table
        follow the miss stream exactly either way — both mirror what
        detailed execution would record — but a detuned observation
        skips the accuracy counter and the correct-streak update, so
        confidence climbs at the rate detailed steady state would see.
        """
        if full:
            return self.train(pc, address)
        entry = self.stride_table.lookup(pc)
        if entry is None:
            self.stride_table._allocate(pc, address)
            return False
        last_address = entry.last_address
        new_stride = address - last_address
        stride_covered = (
            new_stride == entry.last_stride or new_stride == entry.two_delta_stride
        )
        entry.observe(address)
        if not stride_covered:
            self.markov_table.train(last_address, address)
        return False

    # ------------------------------------------------------------------
    # Stream-buffer side
    # ------------------------------------------------------------------

    def make_stream_state(self, pc: int, address: int) -> StreamState:
        """Copy PC, address, fixed stride, and confidence on allocation."""
        entry = self.stride_table.lookup(pc)
        stride = entry.two_delta_stride if entry is not None else 0
        confidence = int(entry.confidence) if entry is not None else 0
        return StreamState(pc, address, stride=stride, confidence=confidence)

    def next_prediction(self, state: StreamState) -> Optional[int]:
        """Markov hit wins; otherwise fall back to the allocated stride."""
        markov_prediction = self.markov_table.lookup(state.last_address)
        if markov_prediction is not None:
            self.markov_predictions += 1
            state.last_address = markov_prediction
            return markov_prediction
        if state.stride == 0:
            return None
        self.stride_predictions += 1
        state.last_address += state.stride
        return state.last_address

    def confidence_for(self, pc: int) -> int:
        return self.stride_table.confidence_for(pc)

    def allocation_ready(self, pc: int) -> bool:
        """PSB two-miss filter: two consecutive correctly predicted misses
        (by either the stride or the Markov component — Section 4.3)."""
        entry = self.stride_table.lookup(pc)
        return entry is not None and entry.consecutive_correct >= 2

    @property
    def accuracy(self) -> float:
        if self.trains == 0:
            return 0.0
        return self.correct_trains / self.trains
