"""Bekerman et al.'s correlated base-address predictor (Section 2.2).

For every load, a first-level table keyed by PC holds a short history of
past *base addresses* (the effective address minus the load's static
offset) plus the static offset itself.  The folded history indexes a
second-level table holding a predicted base address; the prediction is
``base + offset``.  Using base addresses correlates loads that access
different fields of the same object.

The paper simulated this predictor alongside SFM and "saw little to no
improvement in prediction accuracy and coverage over first order Markov"
for its benchmarks, because correlated loads tended to land in the same
cache block — a claim ``benchmarks/bench_ablation_correlated.py``
re-measures.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Deque, Optional

from collections import deque

from repro.predictors.base import AddressPredictor, StreamState
from repro.predictors.saturating import SaturatingCounter


class _LoadEntry:
    """First-level entry: per-load base-address history and offset."""

    __slots__ = ("offset", "history", "confidence", "last_address")

    def __init__(self, history_depth: int, confidence_max: int) -> None:
        self.offset = 0
        self.history: Deque[int] = deque(maxlen=history_depth)
        self.confidence = SaturatingCounter(maximum=confidence_max)
        self.last_address = 0


class CorrelatedAddressPredictor(AddressPredictor):
    """Two-level base-address correlation (history -> next base)."""

    def __init__(
        self,
        first_level_entries: int = 256,
        second_level_entries: int = 4096,
        history_depth: int = 4,
        offset_mask: int = 0xFF,
        confidence_max: int = 7,
    ) -> None:
        self.first_level_entries = first_level_entries
        self.second_level_entries = second_level_entries
        self.history_depth = history_depth
        self.offset_mask = offset_mask
        self.confidence_max = confidence_max
        self._loads: OrderedDict = OrderedDict()  # pc -> _LoadEntry
        self._bases = {}  # folded history -> predicted base
        self.trains = 0
        self.correct_trains = 0

    def _entry_for(self, pc: int) -> _LoadEntry:
        entry = self._loads.get(pc)
        if entry is None:
            if len(self._loads) >= self.first_level_entries:
                self._loads.popitem(last=False)
            entry = _LoadEntry(self.history_depth, self.confidence_max)
            self._loads[pc] = entry
        else:
            self._loads.move_to_end(pc)
        return entry

    def _base_of(self, address: int) -> int:
        return address & ~self.offset_mask

    def _fold(self, history) -> Optional[int]:
        if len(history) < self.history_depth:
            return None
        return hash(tuple(history)) % self.second_level_entries

    def _predict_from(self, entry: _LoadEntry) -> Optional[int]:
        index = self._fold(entry.history)
        if index is None:
            return None
        slot = self._bases.get(index)
        if slot is None or slot[0] != tuple(entry.history):
            return None
        return slot[1] + entry.offset

    # ------------------------------------------------------------------
    # AddressPredictor interface
    # ------------------------------------------------------------------

    def train(self, pc: int, address: int) -> bool:
        """Fold one miss into the two-level structure."""
        self.trains += 1
        entry = self._entry_for(pc)
        entry.offset = address & self.offset_mask
        base = self._base_of(address)
        predicted = self._predict_from(entry)
        correct = predicted == address
        if correct:
            entry.confidence.increment()
            self.correct_trains += 1
        else:
            entry.confidence.decrement()
        index = self._fold(entry.history)
        if index is not None:
            self._bases[index] = (tuple(entry.history), base)
        entry.history.append(base)
        entry.last_address = address
        return correct

    def make_stream_state(self, pc: int, address: int) -> StreamState:
        entry = self._entry_for(pc)
        return StreamState(
            pc,
            address,
            confidence=int(entry.confidence),
            history=list(entry.history),
        )

    def next_prediction(self, state: StreamState) -> Optional[int]:
        if len(state.history) < self.history_depth:
            return None
        index = hash(tuple(state.history[-self.history_depth:])) % (
            self.second_level_entries
        )
        slot = self._bases.get(index)
        if slot is None or slot[0] != tuple(state.history[-self.history_depth:]):
            return None
        base = slot[1]
        state.history.append(base)
        if len(state.history) > self.history_depth:
            del state.history[: len(state.history) - self.history_depth]
        state.last_address = base
        return base

    def confidence_for(self, pc: int) -> int:
        entry = self._loads.get(pc)
        return int(entry.confidence) if entry is not None else 0

    def allocation_ready(self, pc: int) -> bool:
        return self.confidence_for(pc) >= 1

    @property
    def accuracy(self) -> float:
        if self.trains == 0:
            return 0.0
        return self.correct_trains / self.trains
