"""PC-indexed two-delta stride prediction (Sections 2.1 and 3.3.2).

The two-delta scheme only replaces the *predicted* stride when the same
new stride has been seen twice in a row, which keeps one-off irregular
accesses from destroying a stable stride.  The same table, used alone,
is the Farkas et al. PC-stride stream-buffer baseline; filtered in front
of a Markov table it forms the SFM predictor of Section 4.2.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.config import StridePredictorConfig
from repro.predictors.base import AddressPredictor, StreamState
from repro.predictors.saturating import SaturatingCounter


class StrideEntry:
    """One load's stride-prediction state.

    Tracks the last miss address, the last observed stride, the two-delta
    (confirmed) stride, an accuracy confidence counter, and how many
    consecutive misses were correctly predicted (for two-miss filters).
    """

    __slots__ = (
        "pc",
        "last_address",
        "last_stride",
        "two_delta_stride",
        "confidence",
        "consecutive_correct",
        "consecutive_same_stride",
    )

    def __init__(self, pc: int, address: int, confidence_max: int) -> None:
        self.pc = pc
        self.last_address = address
        self.last_stride = 0
        self.two_delta_stride = 0
        self.confidence = SaturatingCounter(maximum=confidence_max)
        self.consecutive_correct = 0
        self.consecutive_same_stride = 0

    @property
    def predicted_address(self) -> int:
        return self.last_address + self.two_delta_stride

    def observe(self, address: int) -> int:
        """Fold a new miss address into the entry; return the new stride.

        Implements the two-delta update: the predicted stride only changes
        once the same new stride has been seen twice in a row.
        """
        stride = address - self.last_address
        if stride == self.last_stride:
            self.two_delta_stride = stride
            self.consecutive_same_stride += 1
        else:
            self.consecutive_same_stride = 0
        self.last_stride = stride
        self.last_address = address
        return stride


class TwoDeltaStrideTable(AddressPredictor):
    """A set-associative, PC-indexed table of :class:`StrideEntry`.

    256 entries, 4-way in the paper; LRU within each set.  Doubles as the
    complete predictor for PC-stride stream buffers.
    """

    def __init__(self, config: Optional[StridePredictorConfig] = None) -> None:
        self.config = config or StridePredictorConfig()
        if self.config.entries % self.config.associativity != 0:
            raise ValueError("entries must divide evenly into ways")
        self.num_sets = self.config.entries // self.config.associativity
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.trains = 0
        self.correct_trains = 0

    def _set_for(self, pc: int) -> OrderedDict:
        return self._sets[pc % self.num_sets]

    def lookup(self, pc: int) -> Optional[StrideEntry]:
        """Find a load's entry without allocating; refreshes LRU on hit."""
        table_set = self._set_for(pc)
        entry = table_set.get(pc)
        if entry is not None:
            table_set.move_to_end(pc)
        return entry

    def _allocate(self, pc: int, address: int) -> StrideEntry:
        table_set = self._set_for(pc)
        if len(table_set) >= self.config.associativity:
            table_set.popitem(last=False)
        entry = StrideEntry(pc, address, self.config.confidence_max)
        table_set[pc] = entry
        return entry

    # ------------------------------------------------------------------
    # AddressPredictor interface
    # ------------------------------------------------------------------

    def train(self, pc: int, address: int) -> bool:
        """Write-back update for a missed load; returns prediction correctness."""
        self.trains += 1
        entry = self.lookup(pc)
        if entry is None:
            self._allocate(pc, address)
            return False
        correct = entry.predicted_address == address
        if correct:
            entry.confidence.increment()
            entry.consecutive_correct += 1
            self.correct_trains += 1
        else:
            entry.confidence.decrement()
            entry.consecutive_correct = 0
        entry.observe(address)
        return correct

    def warm(self, pc: int, address: int, full: bool = True) -> bool:
        """Fast-forward observation; ``full=False`` detunes confidence.

        The stride state (last address, last stride, two-delta stride)
        follows the miss stream exactly either way; only the accuracy
        counter and the correct/same-stride streaks are skipped on a
        detuned observation.
        """
        if full:
            return self.train(pc, address)
        entry = self.lookup(pc)
        if entry is None:
            self._allocate(pc, address)
            return False
        correct = entry.predicted_address == address
        stride = address - entry.last_address
        if stride != entry.last_stride:
            # Keep the *predicted* stride exact without crediting the
            # confidence streaks: a changed stride resets the two-delta
            # pipeline the same way observe() would.
            entry.consecutive_same_stride = 0
        else:
            entry.two_delta_stride = stride
        entry.last_stride = stride
        entry.last_address = address
        return correct

    def make_stream_state(self, pc: int, address: int) -> StreamState:
        entry = self.lookup(pc)
        stride = entry.two_delta_stride if entry is not None else 0
        confidence = int(entry.confidence) if entry is not None else 0
        return StreamState(pc, address, stride=stride, confidence=confidence)

    def next_prediction(self, state: StreamState) -> Optional[int]:
        """Fixed-stride streaming: last + allocated stride, each step."""
        if state.stride == 0:
            return None
        state.last_address += state.stride
        return state.last_address

    def confidence_for(self, pc: int) -> int:
        entry = self.lookup(pc)
        return int(entry.confidence) if entry is not None else 0

    def allocation_ready(self, pc: int) -> bool:
        """Classic two-miss filter: two misses in a row with equal strides."""
        entry = self.lookup(pc)
        return entry is not None and entry.consecutive_same_stride >= 1

    @property
    def accuracy(self) -> float:
        if self.trains == 0:
            return 0.0
        return self.correct_trains / self.trains
