"""The predictor interface a stream buffer can follow (Section 4).

A Predictor-Directed Stream Buffer splits prediction into two pieces:

- **per-stream history** (:class:`StreamState`) lives *in the stream
  buffer*: the allocating load's PC, the last (speculative) address, a
  stride, confidence, and any extra history a predictor needs;
- a **stateless shared predictor** (:class:`AddressPredictor`) owns the
  prediction tables.  Generating a prediction reads the tables and
  updates only the stream state — tables change exclusively during
  training in the write-back stage, on L1 data-cache misses.

This split is the key mechanism of the paper: prediction *n* is produced
from prediction *n−1* without touching the tables, so a buffer can run
arbitrarily far ahead of the miss stream.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional


class StreamState:
    """Speculative per-stream history stored inside one stream buffer."""

    __slots__ = ("pc", "last_address", "stride", "confidence", "history")

    def __init__(
        self,
        pc: int,
        last_address: int,
        stride: int = 0,
        confidence: int = 0,
        history: Optional[List[int]] = None,
    ) -> None:
        self.pc = pc
        self.last_address = last_address
        self.stride = stride
        self.confidence = confidence
        self.history = history if history is not None else []

    def __repr__(self) -> str:
        return (
            f"StreamState(pc={self.pc:#x}, last={self.last_address:#x}, "
            f"stride={self.stride}, conf={self.confidence})"
        )


class AddressPredictor(ABC):
    """Interface between the write-back stage, the stream buffers, and the
    shared prediction tables."""

    @abstractmethod
    def train(self, pc: int, address: int) -> bool:
        """Observe a demand L1 miss in write-back; update tables.

        Returns True when the miss address matched what the predictor
        would have predicted (this drives the accuracy confidence).
        """

    @abstractmethod
    def make_stream_state(self, pc: int, address: int) -> StreamState:
        """Copy prediction info into a newly allocated stream buffer."""

    @abstractmethod
    def next_prediction(self, state: StreamState) -> Optional[int]:
        """Produce the next predicted address for a stream.

        Advances ``state`` speculatively; never touches the tables.
        Returns None when the predictor has nothing useful to say.
        """

    def warm(self, pc: int, address: int, full: bool = True) -> bool:
        """Observe one *fast-forwarded* miss (sampling warm-up).

        With ``full`` the observation is an ordinary :meth:`train`.
        With ``full=False`` implementations should fold the address into
        their history/stride/transition tables — that state mirrors the
        access stream and must stay exact — but leave the accuracy
        confidence and streak counters untouched.  The sampling layer
        alternates the two to warm confidence at a detuned rate matching
        detailed steady state (see
        :meth:`repro.memory.hierarchy.PrefetcherPort.warm_confidence`).
        The default always trains at full fidelity.
        """
        return self.train(pc, address)

    def confidence_for(self, pc: int) -> int:
        """Accuracy confidence for a load, used by allocation filtering."""
        return 0

    def allocation_ready(self, pc: int) -> bool:
        """Whether a two-miss-style filter would admit this load.

        Default: always ready (no filtering information available).
        """
        return True
