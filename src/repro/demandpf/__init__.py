"""Demand-based prefetchers from the paper's Section 3.2.

These are the *prior-art* models the paper positions stream buffers
against: they only act when a demand event (miss or tagged access)
occurs, rather than running decoupled down a predicted stream.

- :class:`NextLinePrefetcher` — Smith's tagged next-line prefetching.
- :class:`DemandMarkovPrefetcher` — Joseph & Grunwald's Markov
  prefetcher with two-bit accuracy-based adaptivity.

Both fill a small fully associative :class:`PrefetchBuffer` probed in
parallel with the L1, mirroring how the originals kept prefetched data
out of the cache proper.
"""

from repro.demandpf.buffer import PrefetchBuffer
from repro.demandpf.markov_prefetcher import DemandMarkovPrefetcher
from repro.demandpf.nextline import NextLinePrefetcher

__all__ = [
    "PrefetchBuffer",
    "DemandMarkovPrefetcher",
    "NextLinePrefetcher",
]
