"""Joseph & Grunwald's demand-based Markov prefetcher (Section 3.2).

On a cache miss, the miss address indexes a Markov table whose entry
holds the set of addresses that have followed this miss before; those
are prefetched into a prefetch buffer and the prefetcher then *stays
idle until the next miss* — predictions are never chained, which is the
key contrast with Predictor-Directed Stream Buffers.

Bandwidth is limited with the paper's description of accuracy-based
adaptivity: each predicted address carries a two-bit saturating counter,
incremented when its prefetch is evicted unused and decremented when
used; while the counter's sign bit is set the prediction is disabled
(but still tracked, so it can be re-enabled).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, List, Optional

from repro.demandpf.buffer import PrefetchBuffer
from repro.memory.hierarchy import NEVER, MemoryHierarchy, PrefetcherPort


class _Successor:
    """One predicted next address and its adaptivity counter."""

    __slots__ = ("address", "counter")

    def __init__(self, address: int) -> None:
        self.address = address
        self.counter = 0  # two-bit: 0..3; "sign bit set" == >= 2

    @property
    def disabled(self) -> bool:
        return self.counter >= 2

    def punish(self) -> None:
        self.counter = min(3, self.counter + 1)

    def reward(self) -> None:
        self.counter = max(0, self.counter - 1)


class DemandMarkovPrefetcher(PrefetcherPort):
    """Miss-triggered Markov prefetching with 2-bit adaptivity."""

    def __init__(
        self,
        block_size: int = 32,
        table_entries: int = 2048,
        successors_per_entry: int = 2,
        buffer_entries: int = 16,
    ) -> None:
        self.block_size = block_size
        self.table_entries = table_entries
        self.successors_per_entry = successors_per_entry
        self.buffer = PrefetchBuffer(buffer_entries)
        self._table: OrderedDict = OrderedDict()  # miss block -> [_Successor]
        self._source: Dict[int, _Successor] = {}  # prefetched block -> origin
        self._pending: List[int] = []
        self._last_miss: Optional[int] = None
        self.hierarchy: Optional[MemoryHierarchy] = None
        self.prefetches_issued = 0
        self.prefetches_used = 0

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        hierarchy.prefetcher = self

    # ------------------------------------------------------------------
    # Table maintenance
    # ------------------------------------------------------------------

    def _successors(self, block: int) -> List[_Successor]:
        entry = self._table.get(block)
        if entry is not None:
            self._table.move_to_end(block)
            return entry
        if len(self._table) >= self.table_entries:
            self._table.popitem(last=False)
        entry = []
        self._table[block] = entry
        return entry

    def _record_transition(self, from_block: int, to_block: int) -> None:
        successors = self._successors(from_block)
        for successor in successors:
            if successor.address == to_block:
                return
        if len(successors) >= self.successors_per_entry:
            successors.pop(0)
        successors.append(_Successor(to_block))

    # ------------------------------------------------------------------
    # PrefetcherPort
    # ------------------------------------------------------------------

    def probe(self, block_addr: int, cycle: int) -> Optional[int]:
        ready = self.buffer.take(block_addr)
        if ready is None:
            return None
        self.prefetches_used += 1
        source = self._source.pop(block_addr, None)
        if source is not None:
            source.reward()
        return ready

    def on_l1_miss(self, pc: int, addr: int, cycle: int, sb_hit: bool) -> None:
        block = addr & ~(self.block_size - 1)
        if self._last_miss is not None and self._last_miss != block:
            self._record_transition(self._last_miss, block)
        self._last_miss = block
        # Queue this miss's known successors for prefetching.
        for successor in self._successors(block):
            if successor.disabled:
                continue
            if self.buffer.contains(successor.address):
                continue
            if successor.address not in self._pending:
                self._pending.append(successor.address)
                self._source[successor.address] = successor

    def tick(self, cycle: int) -> None:
        if not self._pending or self.hierarchy is None:
            return
        if not self.hierarchy.can_prefetch(cycle):
            return
        block = self._pending.pop(0)
        ready = self.hierarchy.issue_prefetch(block, cycle)
        if ready is not None:
            self.prefetches_issued += 1
            evicting = len(self.buffer) >= self.buffer.entries
            if evicting:
                # An unused block is about to fall out: punish its source.
                for victim, source in list(self._source.items()):
                    if self.buffer.contains(victim):
                        source.punish()
                        self._source.pop(victim, None)
                        break
            self.buffer.insert(block, ready)

    def next_event_cycle(self, cycle: int) -> int:
        """Idle until a queued prefetch can win the L1-L2 bus."""
        if not self._pending or self.hierarchy is None:
            return NEVER
        return self.hierarchy.next_prefetch_slot(cycle)

    def quiesce(self) -> None:
        """Bound the pending queue after a fast-forward stretch.

        Fast-forward trains the Markov table on every functional miss
        without ticking, so ``_pending`` (and the ``_source`` back-map
        for never-issued predictions) grows with the gap length; keep
        only the newest buffer's worth of predictions.
        """
        if len(self._pending) <= self.buffer.entries:
            return
        dropped = self._pending[: -self.buffer.entries]
        del self._pending[: -self.buffer.entries]
        for address in dropped:
            if not self.buffer.contains(address):
                self._source.pop(address, None)

    @property
    def accuracy(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return min(1.0, self.prefetches_used / self.prefetches_issued)

    def reset_stats(self) -> None:
        self.prefetches_issued = 0
        self.prefetches_used = 0
