"""A small fully associative prefetch buffer.

Demand-based prefetchers (next-line, Markov) park their prefetched
blocks here rather than polluting the L1; demand lookups probe it in
parallel with the cache, and a hit promotes the block into the L1 (the
hierarchy handles that part, exactly as for stream-buffer hits).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional


class PrefetchBuffer:
    """LRU-replaced block store: block address -> ready cycle."""

    def __init__(self, entries: int = 16) -> None:
        if entries < 1:
            raise ValueError("prefetch buffer needs at least one entry")
        self.entries = entries
        self._blocks: OrderedDict = OrderedDict()
        self.inserted = 0
        self.hits = 0
        self.evicted_unused = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def contains(self, block: int) -> bool:
        return block in self._blocks

    def insert(self, block: int, ready_cycle: int) -> None:
        """Add a prefetched block; LRU-evict if full."""
        if block in self._blocks:
            self._blocks.move_to_end(block)
            return
        if len(self._blocks) >= self.entries:
            self._blocks.popitem(last=False)
            self.evicted_unused += 1
        self._blocks[block] = ready_cycle
        self.inserted += 1

    def take(self, block: int) -> Optional[int]:
        """Remove and return the ready cycle of ``block`` on a hit."""
        ready = self._blocks.pop(block, None)
        if ready is not None:
            self.hits += 1
        return ready

    @property
    def useful_fraction(self) -> float:
        if self.inserted == 0:
            return 0.0
        return self.hits / self.inserted
