"""Smith's tagged Next-Line Prefetching (paper Section 3.2).

Each cache block conceptually carries a tag bit: when a block is
prefetched its bit is cleared; when a block is *used* with the bit clear,
the next sequential block is prefetched and the bit set.  The effect is
that a sequential walk keeps exactly one block of lookahead in flight.

This model keeps the tag bits in a bounded set and parks prefetched
blocks in a :class:`~repro.demandpf.buffer.PrefetchBuffer`.  It exists
as a historical baseline for the prior-prefetcher ablation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional

from repro.demandpf.buffer import PrefetchBuffer
from repro.memory.hierarchy import NEVER, MemoryHierarchy, PrefetcherPort


class NextLinePrefetcher(PrefetcherPort):
    """One-block-lookahead sequential prefetching on demand misses."""

    def __init__(
        self,
        block_size: int = 32,
        buffer_entries: int = 16,
        tag_entries: int = 4096,
    ) -> None:
        self.block_size = block_size
        self.buffer = PrefetchBuffer(buffer_entries)
        self.tag_entries = tag_entries
        self._fresh_tags: OrderedDict = OrderedDict()  # blocks with bit == 0
        self._pending: List[int] = []
        self.hierarchy: Optional[MemoryHierarchy] = None
        self.prefetches_issued = 0
        self.prefetches_used = 0

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        self.hierarchy = hierarchy
        hierarchy.prefetcher = self

    def _queue_next_line(self, block: int) -> None:
        next_block = block + self.block_size
        if self.buffer.contains(next_block) or next_block in self._pending:
            return
        self._pending.append(next_block)

    def _mark_fresh(self, block: int) -> None:
        """Record that ``block`` was prefetched (tag bit cleared)."""
        if block in self._fresh_tags:
            self._fresh_tags.move_to_end(block)
            return
        if len(self._fresh_tags) >= self.tag_entries:
            self._fresh_tags.popitem(last=False)
        self._fresh_tags[block] = True

    # ------------------------------------------------------------------
    # PrefetcherPort
    # ------------------------------------------------------------------

    def probe(self, block_addr: int, cycle: int) -> Optional[int]:
        ready = self.buffer.take(block_addr)
        if ready is None:
            return None
        self.prefetches_used += 1
        # The block is being used for the first time since its prefetch:
        # trigger the next line (the tag-bit rule).
        self._fresh_tags.pop(block_addr, None)
        self._queue_next_line(block_addr)
        return ready

    def on_l1_miss(self, pc: int, addr: int, cycle: int, sb_hit: bool) -> None:
        if not sb_hit:
            block = addr & ~(self.block_size - 1)
            self._queue_next_line(block)

    def tick(self, cycle: int) -> None:
        if not self._pending or self.hierarchy is None:
            return
        if not self.hierarchy.can_prefetch(cycle):
            return
        block = self._pending.pop(0)
        ready = self.hierarchy.issue_prefetch(block, cycle)
        if ready is not None:
            self.prefetches_issued += 1
            self.buffer.insert(block, ready)
            self._mark_fresh(block)

    def next_event_cycle(self, cycle: int) -> int:
        """Idle until a queued prefetch can win the L1-L2 bus."""
        if not self._pending or self.hierarchy is None:
            return NEVER
        return self.hierarchy.next_prefetch_slot(cycle)

    def quiesce(self) -> None:
        """Bound the pending queue after a fast-forward stretch.

        Fast-forward calls :meth:`on_l1_miss` for every functional miss
        without ticking, so ``_pending`` grows with the gap length; only
        the most recent requests could ever fit the buffer anyway.
        """
        if len(self._pending) > self.buffer.entries:
            del self._pending[: -self.buffer.entries]

    @property
    def accuracy(self) -> float:
        if self.prefetches_issued == 0:
            return 0.0
        return min(1.0, self.prefetches_used / self.prefetches_issued)

    def reset_stats(self) -> None:
        self.prefetches_issued = 0
        self.prefetches_used = 0
