"""End-to-end simulation driver, paper presets, and sweep helpers."""

from repro.sim.presets import (
    baseline_config,
    paper_configs,
    prefetch_config,
    psb_config,
    stride_config,
)
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator, simulate
from repro.sim.sweep import cache_sweep, run_configs

__all__ = [
    "baseline_config",
    "paper_configs",
    "prefetch_config",
    "psb_config",
    "stride_config",
    "SimulationResult",
    "Simulator",
    "simulate",
    "cache_sweep",
    "run_configs",
]
