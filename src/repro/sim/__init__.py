"""End-to-end simulation driver, paper presets, and sweep helpers."""

from repro.sim.presets import (
    baseline_config,
    paper_configs,
    prefetch_config,
    psb_config,
    sharing_configs,
    stride_config,
)
from repro.sim.results import SimulationResult
from repro.sim.simulator import Simulator, simulate
from repro.sim.sweep import (
    cache_sweep,
    paired_sweep,
    run_configs,
    sharing_sweep,
)

__all__ = [
    "baseline_config",
    "paper_configs",
    "prefetch_config",
    "psb_config",
    "sharing_configs",
    "stride_config",
    "SimulationResult",
    "Simulator",
    "simulate",
    "cache_sweep",
    "paired_sweep",
    "run_configs",
    "sharing_sweep",
]
