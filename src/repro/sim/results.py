"""Simulation results: every statistic the paper's tables/figures report."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


@dataclass
class SimulationResult:
    """Aggregated outcome of one simulation run (post warm-up)."""

    label: str
    instructions: int
    cycles: int
    ipc: float
    l1_miss_rate: float
    avg_load_latency: float
    load_fraction: float
    store_fraction: float
    branch_misprediction_rate: float
    l1_l2_bus_utilization: float
    l2_mem_bus_utilization: float
    prefetches_issued: int = 0
    prefetches_used: int = 0
    prefetch_accuracy: float = 0.0
    sb_allocations: int = 0
    sb_allocations_denied: int = 0
    forwarded_loads: int = 0
    tlb_miss_rate: float = 0.0
    extra: Dict[str, float] = field(default_factory=dict)

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Percent IPC speedup relative to ``baseline`` (Figure 5 metric)."""
        if baseline.ipc == 0:
            return 0.0
        return 100.0 * (self.ipc / baseline.ipc - 1.0)

    def summary(self) -> str:
        """One-line human-readable digest."""
        return (
            f"{self.label}: IPC={self.ipc:.3f} "
            f"missrate={self.l1_miss_rate:.3f} "
            f"loadlat={self.avg_load_latency:.2f} "
            f"accuracy={self.prefetch_accuracy:.2f}"
        )


def best_of(results: Dict[str, SimulationResult]) -> Optional[str]:
    """Label of the highest-IPC result, or None when empty."""
    if not results:
        return None
    return max(results, key=lambda label: results[label].ipc)
