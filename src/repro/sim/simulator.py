"""The top-level simulator: core + hierarchy + prefetcher, one call.

:func:`simulate` is the main entry point of the library::

    from repro.sim import simulate, baseline_config
    from repro.workloads import get_workload

    result = simulate(baseline_config(), get_workload("health", seed=1),
                      max_instructions=50_000, warmup_instructions=5_000)
    print(result.ipc)

Runs are driven in cycle *chunks* so two orthogonal features can hook
cycle boundaries without touching the core's hot loop:

- **invariant checking** (``config.invariants``): an
  :class:`~repro.integrity.invariants.InvariantChecker` sweeps the
  machine every cycle (``full``) or every ``invariant_sample_period``
  cycles (``cheap``);
- **snapshotting** (``snapshot_every``): a resumable
  :class:`~repro.integrity.snapshot.SimSnapshot` is handed to
  ``snapshot_sink`` at fixed cycle boundaries;
- **metrics sampling** (``config.metrics_interval``): the
  :mod:`repro.obs` registry reads every probe into a time series at
  fixed cycle boundaries.

With all off the run is a single uninterrupted call into the core —
the fast path is unchanged.  Because sampling happens at driver stop
boundaries (which clamp, never alter, the event-driven horizon),
samples land on the same cycles in event-driven and cycle-stepped
modes, and results stay bit-identical with observation on or off.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Optional

from repro.config import SimConfig
from repro.cpu.core import OutOfOrderCore, _RunState
from repro.errors import ReproError, SimulationError
from repro.integrity.invariants import build_checker
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs import EventTrace, build_observability, wire_simulator
from repro.perf.collector import PerfCollector
from repro.sim.results import SimulationResult
from repro.streambuf.controller import build_prefetcher
from repro.trace.record import TraceRecord


class Simulator:
    """One fully wired machine: reusable across runs of the same config.

    ``event_trace`` optionally attaches a :class:`repro.obs.EventTrace`
    that components emit structured events into; metrics sampling is
    controlled by ``config.metrics_interval``.  Both default off.
    """

    def __init__(
        self, config: SimConfig, event_trace: Optional[EventTrace] = None
    ) -> None:
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        # A StreamBufferController for the stream-buffer kinds, or a
        # demand-based PrefetcherPort for the Section 3.2 baselines.
        self.controller = build_prefetcher(
            config.prefetch, config.l1_data.block_size
        )
        if self.controller is not None:
            self.controller.attach(self.hierarchy)
        self.core = OutOfOrderCore(
            config.core, self.hierarchy, event_driven=config.event_driven
        )
        # None when config.invariants is OFF; otherwise wired to the
        # hierarchy so per-miss/per-prefetch hooks fire from inside it.
        self.checker = build_checker(config, self.hierarchy, self.controller)
        self.hierarchy.integrity = self.checker
        # Wall-clock timers + fast-path counters.  The collector pickles
        # empty, so snapshots stay bit-identical whether or not (and
        # however long) a run was measured.
        self.perf = PerfCollector()
        self.core.perf = self.perf
        # Metrics + event tracing (repro.obs).  Like the perf collector,
        # the context pickles disabled so observation never leaks into
        # snapshot payloads.
        self.obs = build_observability(config, event_trace)
        wire_simulator(self.obs, self)

    def run(
        self,
        trace: Iterable[TraceRecord],
        max_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        label: str = "run",
        snapshot_every: Optional[int] = None,
        snapshot_sink: Optional[Callable] = None,
    ) -> SimulationResult:
        """Simulate ``trace`` and gather post-warm-up statistics.

        ``snapshot_every`` (cycles) periodically captures a resumable
        :class:`~repro.integrity.snapshot.SimSnapshot` and passes it to
        ``snapshot_sink``.
        """
        warmup = (
            warmup_instructions
            if warmup_instructions is not None
            else self.config.warmup_instructions
        )
        if self.config.sampling is not None:
            # SMARTS-style systematic sampling: hand the run to the
            # sampling driver (lazy import keeps the detailed path free
            # of any sampling machinery).  Warm-up is per measured
            # window (SamplingConfig.warmup), so a whole-run warm-up
            # would be double-counted.
            if warmup:
                raise SimulationError(
                    "sampled runs take their warm-up from "
                    "SamplingConfig.warmup; run-level "
                    f"warmup_instructions={warmup} must be 0"
                )
            from repro.sampling.driver import run_sampled

            return run_sampled(
                self,
                trace,
                max_instructions=max_instructions,
                label=label,
                snapshot_every=snapshot_every,
                snapshot_sink=snapshot_sink,
            )
        state = self.core.begin_run(
            max_instructions=max_instructions, warmup_instructions=warmup
        )
        return self._drive(
            state,
            iter(trace),
            label,
            snapshot_every=snapshot_every,
            snapshot_sink=snapshot_sink,
        )

    def _drive(
        self,
        state: _RunState,
        source: Iterator[TraceRecord],
        label: str = "run",
        snapshot_every: Optional[int] = None,
        snapshot_sink: Optional[Callable] = None,
    ) -> SimulationResult:
        """Advance ``state`` to completion and build the result.

        Shared by fresh runs (:meth:`run`) and snapshot resumes
        (:func:`repro.integrity.snapshot.resume_run`).
        """
        checker = self.checker

        def on_warmup_end() -> None:
            self.hierarchy.reset_stats()
            if self.controller is not None:
                self.controller.reset_stats()
            if checker is not None:
                checker.note_reset()

        check_stride = checker.stride if checker is not None else None
        if snapshot_every is not None and snapshot_every <= 0:
            raise SimulationError(
                f"snapshot_every must be positive, got {snapshot_every}"
            )
        obs = self.obs
        metrics_stride = (
            obs.sample_interval if obs.metrics_enabled else None
        )
        if metrics_stride is not None:
            obs.bind_run(state)
            obs.metrics.sample(state.cycle)

        try:
            with self.perf.time("simulate"):
                self._advance_loop(
                    state,
                    source,
                    on_warmup_end,
                    check_stride,
                    checker,
                    snapshot_every,
                    snapshot_sink,
                    label,
                    metrics_stride,
                )
        except ReproError:
            # Already classified (e.g. a TraceFormatError surfacing from a
            # lazily-parsed trace iterator, or an IntegrityError from a
            # checker hook): keep the precise category.
            raise
        except Exception as error:
            raise SimulationError(
                f"simulation {label!r} crashed: "
                f"{type(error).__name__}: {error}"
            ) from error
        if metrics_stride is not None:
            # Final row: sample() dedups if the run ended exactly on a
            # periodic boundary already sampled inside the loop.
            obs.metrics.sample(state.cycle)
        stats = self.core.finish_run(state)
        self.perf.add("sim.cycles", stats.cycles)
        self.perf.add("sim.instructions", stats.retired)
        hierarchy = self.hierarchy
        controller = self.controller
        return SimulationResult(
            label=label,
            instructions=stats.retired,
            cycles=stats.cycles,
            ipc=stats.ipc,
            l1_miss_rate=hierarchy.demand_miss_rate,
            avg_load_latency=stats.load_latency.mean,
            load_fraction=stats.load_fraction,
            store_fraction=stats.store_fraction,
            branch_misprediction_rate=self.core.branch_predictor.misprediction_rate,
            l1_l2_bus_utilization=hierarchy.l1_l2_bus.utilization(stats.cycles),
            l2_mem_bus_utilization=hierarchy.l2_mem_bus.utilization(stats.cycles),
            prefetches_issued=getattr(controller, "prefetches_issued", 0),
            prefetches_used=getattr(controller, "prefetches_used", 0),
            prefetch_accuracy=getattr(controller, "accuracy", 0.0),
            sb_allocations=getattr(controller, "allocations", 0),
            sb_allocations_denied=getattr(controller, "allocations_denied", 0),
            forwarded_loads=stats.forwarded_loads,
            tlb_miss_rate=hierarchy.tlb.miss_rate,
            extra={
                # Raw counts the golden-model differential check needs
                # (rates alone cannot express its conservation laws).
                "demand_accesses": float(hierarchy.demand_accesses),
                "demand_misses": float(hierarchy.demand_misses),
                "l1_mshr_merges": float(hierarchy.l1_mshr.merges),
                "loads": float(stats.loads),
                "stores": float(stats.stores),
                "branches": float(stats.branches),
                "invariant_checks": float(
                    checker.checks_run if checker is not None else 0
                ),
            },
        )

    def _advance_loop(
        self,
        state: _RunState,
        source: Iterator[TraceRecord],
        on_warmup_end: Callable,
        check_stride: Optional[int],
        checker,
        snapshot_every: Optional[int],
        snapshot_sink: Optional[Callable],
        label: str,
        metrics_stride: Optional[int] = None,
    ) -> None:
        """The chunked driver body, split out so :meth:`_drive` can time it."""
        if (
            check_stride is None
            and snapshot_every is None
            and metrics_stride is None
        ):
            # Fast path: one uninterrupted call into the core.
            self.core.advance(source, state, on_warmup_end=on_warmup_end)
        else:
            obs = self.obs
            trace = obs.trace
            emit_integrity = (
                trace is not None
                and checker is not None
                and trace.wants("integrity")
            )
            while True:
                stops = []
                if check_stride is not None:
                    stops.append(
                        (state.cycle // check_stride + 1) * check_stride
                    )
                if snapshot_every is not None:
                    stops.append(
                        (state.cycle // snapshot_every + 1) * snapshot_every
                    )
                if metrics_stride is not None:
                    stops.append(
                        (state.cycle // metrics_stride + 1) * metrics_stride
                    )
                finished = self.core.advance(
                    source,
                    state,
                    on_warmup_end=on_warmup_end,
                    stop_cycle=min(stops),
                )
                if checker is not None:
                    checker.on_cycle(state.cycle)
                    if emit_integrity:
                        trace.emit(
                            state.cycle, "integrity", "sweep",
                            checks_run=checker.checks_run,
                        )
                if (
                    metrics_stride is not None
                    and state.cycle % metrics_stride == 0
                ):
                    obs.metrics.sample(state.cycle)
                if finished:
                    break
                if (
                    snapshot_sink is not None
                    and snapshot_every is not None
                    and state.cycle % snapshot_every == 0
                ):
                    from repro.integrity.snapshot import SimSnapshot

                    snapshot_sink(SimSnapshot.capture(self, state, label))


def simulate(
    config: SimConfig,
    trace: Iterable[TraceRecord],
    max_instructions: Optional[int] = None,
    warmup_instructions: Optional[int] = None,
    label: str = "run",
    snapshot_every: Optional[int] = None,
    snapshot_sink: Optional[Callable] = None,
    event_trace: Optional[EventTrace] = None,
) -> SimulationResult:
    """Build a fresh machine for ``config`` and run ``trace`` through it.

    ``event_trace`` attaches structured event tracing (see
    :mod:`repro.obs.tracing`); metrics sampling follows
    ``config.metrics_interval``.
    """
    return Simulator(config, event_trace=event_trace).run(
        trace,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
        label=label,
        snapshot_every=snapshot_every,
        snapshot_sink=snapshot_sink,
    )
