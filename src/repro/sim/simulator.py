"""The top-level simulator: core + hierarchy + prefetcher, one call.

:func:`simulate` is the main entry point of the library::

    from repro.sim import simulate, baseline_config
    from repro.workloads import get_workload

    result = simulate(baseline_config(), get_workload("health", seed=1),
                      max_instructions=50_000, warmup_instructions=5_000)
    print(result.ipc)
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.config import SimConfig
from repro.cpu.core import OutOfOrderCore
from repro.errors import ReproError, SimulationError
from repro.memory.hierarchy import MemoryHierarchy
from repro.sim.results import SimulationResult
from repro.streambuf.controller import build_prefetcher
from repro.trace.record import TraceRecord


class Simulator:
    """One fully wired machine: reusable across runs of the same config."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.hierarchy = MemoryHierarchy(config)
        # A StreamBufferController for the stream-buffer kinds, or a
        # demand-based PrefetcherPort for the Section 3.2 baselines.
        self.controller = build_prefetcher(
            config.prefetch, config.l1_data.block_size
        )
        if self.controller is not None:
            self.controller.attach(self.hierarchy)
        self.core = OutOfOrderCore(config.core, self.hierarchy)

    def run(
        self,
        trace: Iterable[TraceRecord],
        max_instructions: Optional[int] = None,
        warmup_instructions: Optional[int] = None,
        label: str = "run",
    ) -> SimulationResult:
        """Simulate ``trace`` and gather post-warm-up statistics."""
        warmup = (
            warmup_instructions
            if warmup_instructions is not None
            else self.config.warmup_instructions
        )

        def on_warmup_end() -> None:
            self.hierarchy.reset_stats()
            if self.controller is not None:
                self.controller.reset_stats()

        try:
            stats = self.core.run(
                trace,
                max_instructions=max_instructions,
                warmup_instructions=warmup,
                on_warmup_end=on_warmup_end,
            )
        except ReproError:
            # Already classified (e.g. a TraceFormatError surfacing from a
            # lazily-parsed trace iterator): keep the precise category.
            raise
        except Exception as error:
            raise SimulationError(
                f"simulation {label!r} crashed: "
                f"{type(error).__name__}: {error}"
            ) from error
        hierarchy = self.hierarchy
        controller = self.controller
        return SimulationResult(
            label=label,
            instructions=stats.retired,
            cycles=stats.cycles,
            ipc=stats.ipc,
            l1_miss_rate=hierarchy.demand_miss_rate,
            avg_load_latency=stats.load_latency.mean,
            load_fraction=stats.load_fraction,
            store_fraction=stats.store_fraction,
            branch_misprediction_rate=self.core.branch_predictor.misprediction_rate,
            l1_l2_bus_utilization=hierarchy.l1_l2_bus.utilization(stats.cycles),
            l2_mem_bus_utilization=hierarchy.l2_mem_bus.utilization(stats.cycles),
            prefetches_issued=getattr(controller, "prefetches_issued", 0),
            prefetches_used=getattr(controller, "prefetches_used", 0),
            prefetch_accuracy=getattr(controller, "accuracy", 0.0),
            sb_allocations=getattr(controller, "allocations", 0),
            sb_allocations_denied=getattr(controller, "allocations_denied", 0),
            forwarded_loads=stats.forwarded_loads,
            tlb_miss_rate=hierarchy.tlb.miss_rate,
        )


def simulate(
    config: SimConfig,
    trace: Iterable[TraceRecord],
    max_instructions: Optional[int] = None,
    warmup_instructions: Optional[int] = None,
    label: str = "run",
) -> SimulationResult:
    """Build a fresh machine for ``config`` and run ``trace`` through it."""
    return Simulator(config).run(
        trace,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
        label=label,
    )
