"""Parameter sweeps over configurations and workloads.

Figures 5-9 sweep configurations at a fixed machine; Figure 10 sweeps
the L1 data-cache geometry; Figure 11 sweeps the disambiguation policy.
These helpers run a fresh machine per point and return labelled results.

Execution is delegated to :mod:`repro.runner`: by default every point
runs inline and fail-fast (the historical behaviour — same results,
same exceptions), but passing a configured
:class:`~repro.runner.CampaignRunner` turns any sweep into a resilient
campaign with process isolation, timeouts, retries, and checkpointed
resume::

    from repro.runner import CampaignRunner

    runner = CampaignRunner("fig10-campaign", timeout=300, retries=1)
    results = cache_sweep(base, trace_factory, runner=runner)

Failed points are simply absent from the returned dict when the runner's
policy is ``on_error="skip"``; consult ``runner``'s campaign manifest
for the failure records.

``workers=N`` is a shorthand for a process-isolated fail-fast runner
that keeps N points in flight at once — same results as the default
inline runner, in less wall-clock.  Note that lambda/closure trace
factories cannot cross the process boundary and run serially inline;
pass picklable specs (or a :class:`~repro.runner.WorkloadSpec`-based
campaign) to actually parallelise.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.config import SimConfig
from repro.runner.campaign import CampaignRunner, RunSpec
from repro.sim.results import SimulationResult
from repro.trace.record import TraceRecord

#: A factory producing a fresh trace per run (traces are single-use).
TraceFactory = Callable[[], Iterable[TraceRecord]]

#: L1 geometries of Figure 10: (size_bytes, associativity, label).
FIGURE10_CACHES: List[Tuple[int, int, str]] = [
    (16 * 1024, 4, "16K 4-w"),
    (32 * 1024, 2, "32K 2-w"),
    (32 * 1024, 4, "32K 4-w"),
]


def _default_runner(workers: int = 1) -> CampaignRunner:
    """Legacy semantics: in-process, no retry, raise on first failure.

    With ``workers > 1`` the runner keeps fail-fast semantics but fans
    points out across persistent worker processes.
    """
    if workers > 1:
        return CampaignRunner(
            on_error="fail", isolation="process", workers=workers
        )
    return CampaignRunner(on_error="fail", isolation="inline")


def _run_specs(
    specs: List[RunSpec],
    runner: Optional[CampaignRunner],
    workers: int = 1,
) -> Dict[str, SimulationResult]:
    campaign = (runner or _default_runner(workers)).run(specs)
    # Keep sweep order (campaign.results is insertion-ordered already,
    # but resumed points interleave identically because specs drive it).
    return {
        spec.run_id: campaign.results[spec.run_id]
        for spec in specs
        if spec.run_id in campaign.results
    }


def run_configs(
    configs: Dict[str, SimConfig],
    trace_factory: TraceFactory,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
    runner: Optional[CampaignRunner] = None,
    workers: int = 1,
) -> Dict[str, SimulationResult]:
    """Run every labelled config against fresh copies of the same workload."""
    specs = [
        RunSpec(
            run_id=label,
            config=config,
            trace=trace_factory,
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        for label, config in configs.items()
    ]
    return _run_specs(specs, runner, workers)


def sharing_sweep(
    trace_factory: TraceFactory,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
    pool_entries: Optional[int] = None,
    runner: Optional[CampaignRunner] = None,
    workers: int = 1,
) -> Dict[str, SimulationResult]:
    """Run the fixed-vs-harmonic-vs-credence comparison on one workload.

    One PSB machine per buffer-sharing policy
    (:func:`repro.sim.presets.sharing_configs`); feed the returned dict
    to :func:`repro.analysis.comparison_report` with
    ``baseline_label="fixed"`` to render the comparison table of
    ``docs/buffer_sharing.md``.
    """
    from repro.sim.presets import sharing_configs

    return run_configs(
        sharing_configs(pool_entries),
        trace_factory,
        max_instructions=max_instructions,
        warmup_instructions=warmup_instructions,
        runner=runner,
        workers=workers,
    )


def paired_sweep(
    configs: Dict[str, SimConfig],
    trace_factory: TraceFactory,
    max_instructions: Optional[int] = None,
    baseline: Optional[str] = None,
):
    """Sample every machine over the same window grid of one workload.

    The matched-pair counterpart of :func:`run_configs` for sampled
    sweeps: instead of giving each machine its own trace copy, the
    trace is materialised once and every config runs the *identical*
    record sequence and window grid through
    :func:`repro.sampling.paired.run_paired`, so the fast-forward
    cold-start bias cancels in the relative-IPC estimates (the
    quantities Figure 5-style comparisons report).  Every config must
    carry the same :class:`~repro.config.SamplingConfig`.

    Runs inline by design — the legs share one materialised trace, and
    a paired comparison is only meaningful when all legs complete.
    Returns a :class:`~repro.sampling.paired.PairedResult`.
    """
    from repro.sampling.paired import run_paired

    return run_paired(
        configs,
        trace_factory(),
        max_instructions=max_instructions,
        baseline=baseline,
    )


def cache_sweep(
    base_config: SimConfig,
    trace_factory: TraceFactory,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
    geometries: Optional[List[Tuple[int, int, str]]] = None,
    runner: Optional[CampaignRunner] = None,
    workers: int = 1,
) -> Dict[str, SimulationResult]:
    """Run one config across the Figure 10 L1 geometries."""
    geometries = geometries if geometries is not None else FIGURE10_CACHES
    specs = [
        RunSpec(
            run_id=label,
            config=base_config.with_l1(size_bytes, associativity),
            trace=trace_factory,
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
        )
        for size_bytes, associativity, label in geometries
    ]
    return _run_specs(specs, runner, workers)
