"""Parameter sweeps over configurations and workloads.

Figures 5-9 sweep configurations at a fixed machine; Figure 10 sweeps
the L1 data-cache geometry; Figure 11 sweeps the disambiguation policy.
These helpers run a fresh machine per point and return labelled results.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.config import SimConfig
from repro.sim.results import SimulationResult
from repro.sim.simulator import simulate
from repro.trace.record import TraceRecord

#: A factory producing a fresh trace per run (traces are single-use).
TraceFactory = Callable[[], Iterable[TraceRecord]]

#: L1 geometries of Figure 10: (size_bytes, associativity, label).
FIGURE10_CACHES: List[Tuple[int, int, str]] = [
    (16 * 1024, 4, "16K 4-w"),
    (32 * 1024, 2, "32K 2-w"),
    (32 * 1024, 4, "32K 4-w"),
]


def run_configs(
    configs: Dict[str, SimConfig],
    trace_factory: TraceFactory,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
) -> Dict[str, SimulationResult]:
    """Run every labelled config against fresh copies of the same workload."""
    results: Dict[str, SimulationResult] = {}
    for label, config in configs.items():
        results[label] = simulate(
            config,
            trace_factory(),
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
            label=label,
        )
    return results


def cache_sweep(
    base_config: SimConfig,
    trace_factory: TraceFactory,
    max_instructions: Optional[int] = None,
    warmup_instructions: int = 0,
    geometries: Optional[List[Tuple[int, int, str]]] = None,
) -> Dict[str, SimulationResult]:
    """Run one config across the Figure 10 L1 geometries."""
    geometries = geometries if geometries is not None else FIGURE10_CACHES
    results: Dict[str, SimulationResult] = {}
    for size_bytes, associativity, label in geometries:
        config = base_config.with_l1(size_bytes, associativity)
        results[label] = simulate(
            config,
            trace_factory(),
            max_instructions=max_instructions,
            warmup_instructions=warmup_instructions,
            label=label,
        )
    return results
