"""Configuration presets matching the paper's evaluated machines.

Section 6 compares six configurations on every benchmark:

- ``Base``: the Section 5.1 machine with no prefetching;
- ``Stride``: Farkas et al.'s PC-stride stream buffers (two-miss filter,
  round-robin scheduling) — the best prior stream-buffer approach;
- four PSB variants crossing the allocation filter (two-miss vs.
  confidence) with the scheduler (round-robin vs. priority counters).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.config import (
    AllocationPolicy,
    BufferSharing,
    PrefetchConfig,
    PrefetcherKind,
    SchedulingPolicy,
    SimConfig,
    StreamBufferConfig,
)

#: Labels as they appear in Figures 5-9.
PAPER_PREFETCH_LABELS = (
    "Stride",
    "2Miss-RR",
    "2Miss-Priority",
    "ConfAlloc-RR",
    "ConfAlloc-Priority",
)


def baseline_config() -> SimConfig:
    """The Section 5.1 machine with no prefetching."""
    return SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NONE))


def prefetch_config(
    kind: PrefetcherKind,
    allocation: AllocationPolicy,
    scheduling: SchedulingPolicy,
) -> SimConfig:
    """Baseline machine plus the selected stream-buffer architecture."""
    stream_buffers = StreamBufferConfig(allocation=allocation, scheduling=scheduling)
    return SimConfig(
        prefetch=PrefetchConfig(kind=kind, stream_buffers=stream_buffers)
    )


def stride_config() -> SimConfig:
    """Farkas et al. PC-stride stream buffers (the paper's "Stride")."""
    return prefetch_config(
        PrefetcherKind.STRIDE_PC,
        AllocationPolicy.TWO_MISS,
        SchedulingPolicy.ROUND_ROBIN,
    )


def psb_config(
    allocation: AllocationPolicy = AllocationPolicy.CONFIDENCE,
    scheduling: SchedulingPolicy = SchedulingPolicy.PRIORITY,
) -> SimConfig:
    """A Predictor-Directed Stream Buffer machine (SFM predictor)."""
    return prefetch_config(PrefetcherKind.PREDICTOR_DIRECTED, allocation, scheduling)


def sequential_config() -> SimConfig:
    """Jouppi-style next-block stream buffers (extra historical baseline)."""
    return prefetch_config(
        PrefetcherKind.SEQUENTIAL,
        AllocationPolicy.ALWAYS,
        SchedulingPolicy.ROUND_ROBIN,
    )


def min_delta_config() -> SimConfig:
    """Palacharla & Kessler minimum-delta stream buffers (Section 3.3.2).

    The paper reports this scheme "uniformly outperformed" by the
    PC-stride detector; the prior-prefetcher ablation re-verifies that.
    """
    return prefetch_config(
        PrefetcherKind.MIN_DELTA,
        AllocationPolicy.TWO_MISS,
        SchedulingPolicy.ROUND_ROBIN,
    )


def next_line_config() -> SimConfig:
    """Smith's tagged next-line prefetching (Section 3.2)."""
    return SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.NEXT_LINE))


def demand_markov_config() -> SimConfig:
    """Joseph & Grunwald's demand-based Markov prefetcher (Section 3.2)."""
    return SimConfig(prefetch=PrefetchConfig(kind=PrefetcherKind.DEMAND_MARKOV))


def sharing_configs(
    pool_entries: Optional[int] = None,
) -> Dict[str, SimConfig]:
    """The buffer-sharing comparison: one PSB machine per policy.

    All three run the paper's best machine (ConfAlloc-Priority); only
    the entry-ownership policy differs.  ``fixed`` is bit-identical to
    :func:`psb_config`, the pooled policies share ``pool_entries``
    entries (default: the same 8 x 4 = 32 the fixed partition owns).
    See :mod:`repro.streambuf.sharing` and ``docs/buffer_sharing.md``.
    """
    base = psb_config()
    return {
        "fixed": base.with_sharing(BufferSharing.FIXED, pool_entries),
        "harmonic": base.with_sharing(BufferSharing.HARMONIC, pool_entries),
        "credence": base.with_sharing(BufferSharing.CREDENCE, pool_entries),
    }


def paper_configs() -> Dict[str, SimConfig]:
    """The five prefetching configurations of Figures 5-9, by label."""
    return {
        "Stride": stride_config(),
        "2Miss-RR": psb_config(
            AllocationPolicy.TWO_MISS, SchedulingPolicy.ROUND_ROBIN
        ),
        "2Miss-Priority": psb_config(
            AllocationPolicy.TWO_MISS, SchedulingPolicy.PRIORITY
        ),
        "ConfAlloc-RR": psb_config(
            AllocationPolicy.CONFIDENCE, SchedulingPolicy.ROUND_ROBIN
        ),
        "ConfAlloc-Priority": psb_config(
            AllocationPolicy.CONFIDENCE, SchedulingPolicy.PRIORITY
        ),
    }
