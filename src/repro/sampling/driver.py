"""The systematic-sampling driver: detailed windows + fast-forward gaps.

Each :class:`~repro.config.SamplingConfig` period of ``period`` trace
records is fast-forwarded through the
:class:`~repro.sampling.fastforward.FastForwardEngine` except for a
detailed stretch of ``warmup + window`` records — ``warmup``
instructions to warm timing state (discarded) then ``window`` measured
instructions — placed at each period's *midpoint*: the first
fast-forward gap is half a gap, every later gap a full one.  The
midpoint grid (the SMARTS layout) keeps windows away from both edges of
the estimator's blind spots: anchoring windows at period starts would
give the program's extreme cold-start transient a whole period's
weight, while anchoring them at period ends would never sample the
head-of-trace ramp at all.

**Window placement is a pure function of record counts.**  The
fast-forward gap replays exactly ``period - (warmup + window)`` records
and the detailed window consumes ``_RunState.records_consumed`` records
(bit-identical between the event-driven and cycle-stepped loops, which
the equivalence tests assert), so sampled results are mode-independent
and deterministic.

**The clock never rewinds.**  Every window starts at the cycle the
previous one ended (fast-forward is zero-cycle), so in-flight fills,
MSHR entries, and bus reservations left by the previous window drain
naturally as the new window's monotone clock passes them — no machinery
is quiesced between windows.

Per-window statistics are harvested right after each window and stitched
into one :class:`~repro.sim.results.SimulationResult`: whole-trace IPC
is instruction-weighted, and ``extra`` carries the sampling metadata
(window count, a 95% confidence interval over per-window IPC, per-window
rows) as plain floats so manifests round-trip unchanged.

Snapshots: with ``snapshot_every``/``snapshot_sink`` the driver captures
a ``mode="sampled"`` :class:`~repro.integrity.snapshot.SimSnapshot` at
period boundaries (the first boundary at or after each ``snapshot_every``
cycles of progress); :func:`resume_sampled` continues one to a result
bit-identical to an uninterrupted run.  Metrics sampling and event
tracing (:mod:`repro.obs`) stay off in sampled mode — timelines over a
discontinuous clock would mislead more than inform.
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, Iterator, List, Optional

from repro.errors import IntegrityError, ReproError, SimulationError
from repro.sampling.fastforward import FastForwardEngine
from repro.sim.results import SimulationResult
from repro.stats import ratio
from repro.trace.record import TraceRecord

#: How many per-window rows are exported into ``result.extra`` before
#: truncating — manifests should stay human-readable even for very long
#: traces.  The CI and aggregate stats always cover *all* windows.
_MAX_WINDOW_ROWS = 64


class _SamplingState:
    """Everything a sampled run needs to resume at a period boundary.

    Exposes ``cycle`` and ``records_consumed`` attributes so
    :meth:`SimSnapshot.capture` treats it exactly like a ``_RunState``.
    Plain picklable data only.
    """

    __slots__ = (
        "cycle",
        "records_consumed",
        "period_index",
        "windows",
        "ff",
        "merges_seen",
        "max_instructions",
        "last_snapshot_cycle",
    )

    def __init__(self, max_instructions: Optional[int]) -> None:
        self.cycle = 0
        self.records_consumed = 0
        self.period_index = 0
        #: One dict of raw integer counters per measured window.
        self.windows: List[dict] = []
        #: Fast-forward totals (mirrors the engine's counters).
        self.ff = {
            "instructions": 0,
            "loads": 0,
            "stores": 0,
            "branches": 0,
            "l1_misses": 0,
        }
        #: Cumulative L1 MSHR merges at the end of the last window (the
        #: merge counter is never reset, so windows record deltas).
        self.merges_seen = 0
        self.max_instructions = max_instructions
        self.last_snapshot_cycle = 0

    def __getstate__(self):
        return {name: getattr(self, name) for name in self.__slots__}

    def __setstate__(self, state):
        for name, value in state.items():
            setattr(self, name, value)


def run_sampled(
    simulator,
    trace: Iterable[TraceRecord],
    max_instructions: Optional[int] = None,
    label: str = "run",
    snapshot_every: Optional[int] = None,
    snapshot_sink: Optional[Callable] = None,
    window_sink: Optional[List[dict]] = None,
) -> SimulationResult:
    """Run ``trace`` under ``simulator.config.sampling``.

    Called from :meth:`repro.sim.simulator.Simulator.run` when
    ``config.sampling`` is set; ``max_instructions`` bounds total records
    (fast-forwarded + detailed), matching detailed-mode semantics.
    ``window_sink``, when given, receives one *uncapped* row dict per
    measured window (index, ipc, instructions, cycles, miss_rate) — the
    paired driver consumes these; ``result.extra`` stays capped at
    ``_MAX_WINDOW_ROWS`` rows either way.
    """
    state = _SamplingState(max_instructions)
    return _drive_sampled(
        simulator,
        iter(trace),
        state,
        label,
        snapshot_every=snapshot_every,
        snapshot_sink=snapshot_sink,
        window_sink=window_sink,
    )


def resume_sampled(
    snapshot,
    trace: Iterable[TraceRecord],
    label: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    snapshot_sink: Optional[Callable] = None,
    window_sink: Optional[List[dict]] = None,
) -> SimulationResult:
    """Continue a ``mode="sampled"`` snapshot to completion.

    The counterpart of :func:`repro.integrity.snapshot.resume_run`:
    ``trace`` must be a fresh instance of the same deterministic trace,
    and the stitched result is bit-identical to an uninterrupted sampled
    run (asserted by the test suite).
    """
    if snapshot.mode != "sampled":
        raise IntegrityError(
            f"snapshot {snapshot.label!r} was captured in "
            f"{snapshot.mode!r} mode and cannot resume into the sampling "
            f"driver; use repro.integrity.snapshot.resume_run"
        )
    from repro.integrity.snapshot import fast_forward

    simulator, state = snapshot.restore()
    source = fast_forward(trace, snapshot.records_consumed)
    result = _drive_sampled(
        simulator,
        source,
        state,
        label if label is not None else snapshot.label,
        snapshot_every=snapshot_every,
        snapshot_sink=snapshot_sink,
        window_sink=window_sink,
    )
    result.extra["resumed_from_cycle"] = float(snapshot.cycle)
    return result


def _drive_sampled(
    simulator,
    source: Iterator[TraceRecord],
    state: _SamplingState,
    label: str,
    snapshot_every: Optional[int] = None,
    snapshot_sink: Optional[Callable] = None,
    window_sink: Optional[List[dict]] = None,
) -> SimulationResult:
    sampling = simulator.config.sampling
    if sampling is None:
        raise SimulationError(
            "sampling driver invoked without SimConfig.sampling"
        )
    if snapshot_every is not None and snapshot_every <= 0:
        raise SimulationError(
            f"snapshot_every must be positive, got {snapshot_every}"
        )
    engine = FastForwardEngine(simulator)
    # Seed the engine with pre-resume totals so stitched ff counters
    # cover the whole run, not just the post-resume stretch.
    for name, value in state.ff.items():
        setattr(engine, name, value)
    try:
        with simulator.perf.time("simulate"):
            _sampling_loop(
                simulator,
                source,
                state,
                engine,
                label,
                snapshot_every,
                snapshot_sink,
            )
    except ReproError:
        raise
    except Exception as error:
        raise SimulationError(
            f"sampled simulation {label!r} crashed: "
            f"{type(error).__name__}: {error}"
        ) from error
    state.ff = {
        "instructions": engine.instructions,
        "loads": engine.loads,
        "stores": engine.stores,
        "branches": engine.branches,
        "l1_misses": engine.l1_misses,
    }
    return _stitch(simulator, state, sampling, label, window_sink)


def _sampling_loop(
    simulator,
    source: Iterator[TraceRecord],
    state: _SamplingState,
    engine: FastForwardEngine,
    label: str,
    snapshot_every: Optional[int],
    snapshot_sink: Optional[Callable],
) -> None:
    sampling = simulator.config.sampling
    period = sampling.period
    window = sampling.window
    warmup = sampling.warmup
    # Stratified placement: with s strata each period's detailed budget
    # splits into s sub-windows, one at the midpoint of each of the
    # period's s strata.  The loop below then just runs the midpoint
    # rule on the sub-period grid — same measured fraction, s times the
    # phase coverage.  (SamplingConfig validated divisibility.)
    if sampling.strata > 1:
        period //= sampling.strata
        window //= sampling.strata
        warmup //= sampling.strata
    core = simulator.core
    hierarchy = simulator.hierarchy
    controller = simulator.controller
    checker = simulator.checker
    budget = state.max_instructions

    def on_warmup_end() -> None:
        hierarchy.reset_stats()
        if controller is not None:
            controller.reset_stats()
        if checker is not None:
            checker.note_reset()

    def reset_window_stats() -> None:
        # With warmup == 0 the core's warm-up boundary never fires, so
        # replicate its resets before the window starts measuring.
        core.stats.load_latency.reset()
        core.branch_predictor.reset_stats()
        core.store_tracker.reset_stats()
        on_warmup_end()

    check_stride = checker.stride if checker is not None else None
    clock = state.cycle
    gap_target = period - (window + warmup)
    # The first gap is half a period so windows sit at period *midpoints*
    # (the midpoint rule): an end-of-period grid systematically skips any
    # monotone transient at the head of the trace, biasing the estimate
    # high.  Resumes recompute the same grid from period_index (which
    # counts sub-periods under stratified placement).
    gap = (
        gap_target // 2 if state.period_index == 0 else gap_target
    )
    pending = None

    while True:
        remaining = (
            None if budget is None else budget - state.records_consumed
        )
        if remaining is not None and remaining <= gap + warmup:
            # Whatever is left cannot contain a measured instruction
            # after the gap and warm-up: fast-forward the tail so the
            # whole budget still warms state (harmless if a later caller
            # resumes) and stop.
            if remaining > 0 or pending is not None:
                state.records_consumed += engine.replay(
                    source, max(0, remaining), clock, pending
                )
                hierarchy.prefetcher.quiesce()
            break

        # ---- fast-forward to the window (SMARTS functional warming) --
        if gap > 0 or pending is not None:
            pulled = engine.replay(source, gap, clock, pending)
            pending = None
            state.records_consumed += pulled
            hierarchy.prefetcher.quiesce()
            if pulled < gap:
                break  # trace ran dry mid-gap: no further window fits
        gap = gap_target

        # ---- detailed window (warmup + measured) ---------------------
        window_start = state.records_consumed
        detailed_cap = window + warmup
        if budget is not None:
            detailed_cap = min(
                detailed_cap, budget - state.records_consumed
            )
        run_state = core.begin_run(
            max_instructions=detailed_cap, warmup_instructions=warmup
        )
        # Continue the global clock: the window starts where the last
        # one ended, so leftover fills/reservations drain naturally and
        # the deadlock detector's reference point is current.
        run_state.cycle = clock
        run_state.last_retire_cycle = clock
        run_state.warmup_cycle = clock
        if warmup == 0:
            reset_window_stats()
        if check_stride is None:
            core.advance(source, run_state, on_warmup_end=on_warmup_end)
        else:
            while True:
                stop = (run_state.cycle // check_stride + 1) * check_stride
                finished = core.advance(
                    source,
                    run_state,
                    on_warmup_end=on_warmup_end,
                    stop_cycle=stop,
                )
                checker.on_cycle(run_state.cycle)
                if finished:
                    break
        stats = core.finish_run(run_state)
        clock = run_state.cycle
        state.cycle = clock
        state.records_consumed += run_state.records_consumed
        exhausted = run_state.fetched < detailed_cap
        if not run_state.warmup_pending and stats.retired > 0:
            row = _harvest_window(simulator, stats, state)
            # Record-space offset of the detailed stretch: the paired
            # driver asserts both machines of a pair measured the same
            # trace spans.
            row["start_record"] = window_start
            state.windows.append(row)
        if exhausted:
            break
        # A record the window consumed but never dispatched is replayed
        # by the next fast-forward stretch.
        pending = run_state.pending_record
        state.period_index += 1

        if (
            snapshot_sink is not None
            and snapshot_every is not None
            and clock - state.last_snapshot_cycle >= snapshot_every
        ):
            from repro.integrity.snapshot import SimSnapshot

            state.ff = {
                "instructions": engine.instructions,
                "loads": engine.loads,
                "stores": engine.stores,
                "branches": engine.branches,
                "l1_misses": engine.l1_misses,
            }
            state.last_snapshot_cycle = clock
            snapshot_sink(
                SimSnapshot.capture(simulator, state, label, mode="sampled")
            )


def _harvest_window(simulator, stats, state: _SamplingState) -> dict:
    """Raw post-warm-up counters of the window that just finished.

    Every counter here was reset at the window's warm-up boundary (or by
    ``reset_window_stats`` when warmup is 0) except the MSHR merge
    counter, which is cumulative and recorded as a delta.
    """
    hierarchy = simulator.hierarchy
    controller = simulator.controller
    bp = simulator.core.branch_predictor
    merges_now = hierarchy.l1_mshr.merges
    merges = merges_now - state.merges_seen
    state.merges_seen = merges_now
    return {
        "instructions": stats.retired,
        "cycles": stats.cycles,
        "loads": stats.loads,
        "stores": stats.stores,
        "branches": stats.branches,
        "forwarded": stats.forwarded_loads,
        "latency_total": stats.load_latency.total,
        "latency_count": stats.load_latency.count,
        "demand_accesses": hierarchy.demand_accesses,
        "demand_misses": hierarchy.demand_misses,
        "mshr_merges": merges,
        "bp_predictions": bp.predictions,
        "bp_mispredictions": bp.mispredictions,
        "l1l2_busy": hierarchy.l1_l2_bus.busy_cycles,
        "l2mem_busy": hierarchy.l2_mem_bus.busy_cycles,
        "tlb_accesses": hierarchy.tlb.accesses,
        "tlb_misses": hierarchy.tlb.misses,
        "prefetches_issued": getattr(controller, "prefetches_issued", 0),
        "prefetches_used": getattr(controller, "prefetches_used", 0),
        "sb_allocations": getattr(controller, "allocations", 0),
        "sb_allocations_denied": getattr(
            controller, "allocations_denied", 0
        ),
    }


def _stitch(
    simulator,
    state: _SamplingState,
    sampling,
    label: str,
    window_sink: Optional[List[dict]] = None,
) -> SimulationResult:
    """Aggregate per-window counters into one whole-trace result."""
    windows = state.windows
    checker = simulator.checker

    def total(key: str) -> int:
        return sum(w[key] for w in windows)

    instructions = total("instructions")
    cycles = total("cycles")
    ipcs = [ratio(w["instructions"], w["cycles"]) for w in windows]
    ci95 = 0.0
    if len(ipcs) >= 2:
        mean = sum(ipcs) / len(ipcs)
        variance = sum((x - mean) ** 2 for x in ipcs) / (len(ipcs) - 1)
        ci95 = 1.96 * math.sqrt(variance) / math.sqrt(len(ipcs))
    issued = total("prefetches_issued")
    used = total("prefetches_used")
    extra = {
        # Raw counts mirroring the detailed result's extra block.
        "demand_accesses": float(total("demand_accesses")),
        "demand_misses": float(total("demand_misses")),
        "l1_mshr_merges": float(total("mshr_merges")),
        "loads": float(total("loads")),
        "stores": float(total("stores")),
        "branches": float(total("branches")),
        "invariant_checks": float(
            checker.checks_run if checker is not None else 0
        ),
        # Sampling metadata (floats only: manifests round-trip asdict).
        "sampled": 1.0,
        "sample_period": float(sampling.period),
        "sample_window": float(sampling.window),
        "sample_warmup": float(sampling.warmup),
        "sample_strata": float(sampling.strata),
        "sample_warm_confidence": float(sampling.warm_confidence),
        "windows": float(len(windows)),
        # No silent caps: how many per-window rows the _MAX_WINDOW_ROWS
        # export limit dropped from this extra block (0 = none).
        "windows_truncated": float(
            max(0, len(windows) - _MAX_WINDOW_ROWS)
        ),
        "ipc_ci95": ci95,
        "measured_instructions": float(instructions),
        "ff_instructions": float(state.ff["instructions"]),
        "ff_l1_misses": float(state.ff["l1_misses"]),
    }
    for index, (w, ipc) in enumerate(zip(windows, ipcs)):
        miss_rate = ratio(w["demand_misses"], w["demand_accesses"])
        if window_sink is not None:
            window_sink.append(
                {
                    "index": index,
                    "ipc": ipc,
                    "instructions": w["instructions"],
                    "cycles": w["cycles"],
                    "miss_rate": miss_rate,
                    "start_record": w.get("start_record", 0),
                }
            )
        if index >= _MAX_WINDOW_ROWS:
            continue
        extra[f"win.{index}.ipc"] = ipc
        extra[f"win.{index}.instructions"] = float(w["instructions"])
        extra[f"win.{index}.cycles"] = float(w["cycles"])
        extra[f"win.{index}.miss_rate"] = miss_rate
    return SimulationResult(
        label=label,
        instructions=instructions,
        cycles=cycles,
        ipc=ratio(instructions, cycles),
        l1_miss_rate=ratio(
            total("demand_misses"), total("demand_accesses")
        ),
        avg_load_latency=ratio(
            total("latency_total"), total("latency_count")
        ),
        load_fraction=ratio(total("loads"), instructions),
        store_fraction=ratio(total("stores"), instructions),
        branch_misprediction_rate=ratio(
            total("bp_mispredictions"), total("bp_predictions")
        ),
        l1_l2_bus_utilization=min(
            1.0, ratio(total("l1l2_busy"), cycles)
        ),
        l2_mem_bus_utilization=min(
            1.0, ratio(total("l2mem_busy"), cycles)
        ),
        prefetches_issued=issued,
        prefetches_used=used,
        prefetch_accuracy=min(1.0, ratio(used, issued)),
        sb_allocations=total("sb_allocations"),
        sb_allocations_denied=total("sb_allocations_denied"),
        forwarded_loads=total("forwarded"),
        tlb_miss_rate=ratio(total("tlb_misses"), total("tlb_accesses")),
        extra=extra,
    )
