"""Functional fast-forward: warm the detailed machine at replay speed.

Between measured windows the sampling driver replays the trace through
this engine instead of the detailed core.  The engine mutates the
*detailed machine's own* state — the L1/L2 tag arrays, the gshare
counters and history, and the prefetcher's predictor tables
(via :meth:`PrefetcherPort.warm_l1_miss`) — so when the next window opens
the timing simulation starts from functionally warm state, exactly the
way the golden model (:mod:`repro.integrity.golden`) replays tags for
its differential check.

What is deliberately **not** modelled: cycles, MSHRs, buses, fills, and
prefetch issue.  Fast-forward is zero-cycle functional warming; only the
detailed windows accumulate timing.  Statistics counters are also left
alone wherever possible (they are reset at each window's warm-up
boundary anyway) — the hot loop below touches the cache ``OrderedDict``
sets and the predictor tables directly rather than going through
``access``/``update``, because at 10-50x target speedups every
per-record attribute lookup and stats increment matters.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.trace.record import InstrKind, TraceRecord


class FastForwardEngine:
    """Replays trace records into one simulator's functional state.

    The engine mirrors the demand path of
    :meth:`repro.memory.hierarchy.MemoryHierarchy.access` functionally:
    L1 hit refreshes LRU (stores set the dirty bit); an L1 miss does the
    L2 lookup/fill, fills the L1 with write-back of a dirty victim into
    the L2, and trains the prefetcher — loads only, matching
    ``_finish_miss`` (stores never train the predictor).
    """

    def __init__(self, simulator) -> None:
        self._l1 = simulator.hierarchy.l1
        self._l2 = simulator.hierarchy.l2
        self._prefetcher = simulator.hierarchy.prefetcher
        self._bp = simulator.core.branch_predictor
        sampling = simulator.config.sampling
        #: Timing-aware warming (SamplingConfig.warm_confidence): route
        #: load misses through the prefetcher's detuned warm_confidence
        #: hook instead of full-rate warm_l1_miss.
        self._timed_warm = sampling is not None and sampling.warm_confidence
        #: Cumulative functional-replay counters (whole run, never reset).
        self.instructions = 0
        self.loads = 0
        self.stores = 0
        self.branches = 0
        self.l1_misses = 0

    def replay(
        self,
        source: Iterator[TraceRecord],
        count: int,
        cycle: int,
        pending: Optional[TraceRecord] = None,
    ) -> int:
        """Replay ``pending`` plus up to ``count`` records from ``source``.

        ``pending`` is a record the detailed window already consumed but
        never dispatched (``_RunState.pending_record``); it is replayed
        first and does not count against ``count``.  ``cycle`` is the
        frozen simulation clock the prefetcher sees while fast-forwarding
        (time does not advance between windows).  Returns how many
        records were pulled from ``source`` — fewer than ``count`` only
        when the trace ran dry.
        """
        l1 = self._l1
        l2 = self._l2
        l1_sets = l1._sets
        l1_mask = l1.block_size - 1
        l1_shift = l1.block_size.bit_length() - 1
        l1_nsets = l1.num_sets
        l1_ways = l1.associativity
        l2_sets = l2._sets
        l2_mask = l2.block_size - 1
        l2_shift = l2.block_size.bit_length() - 1
        l2_nsets = l2.num_sets
        l2_ways = l2.associativity
        bp = self._bp
        counters = bp._counters
        hist_mask = bp._mask
        history = bp._history
        pf_warm = (
            self._prefetcher.warm_confidence
            if self._timed_warm
            else self._prefetcher.warm_l1_miss
        )
        LOAD = InstrKind.LOAD
        STORE = InstrKind.STORE
        BRANCH = InstrKind.BRANCH
        instructions = loads = stores = branches = l1_misses = 0
        pulled = 0
        try:
            while True:
                if pending is not None:
                    record = pending
                    pending = None
                else:
                    if pulled >= count:
                        break
                    record = next(source, None)
                    if record is None:
                        break
                    pulled += 1
                instructions += 1
                kind = record.kind
                if kind is BRANCH:
                    branches += 1
                    # gshare train, inlined without the (window-reset)
                    # prediction counters: only the counter table and the
                    # history register carry warmth across windows.
                    index = ((record.pc >> 2) ^ history) & hist_mask
                    if record.taken:
                        if counters[index] < 3:
                            counters[index] += 1
                        history = ((history << 1) | 1) & hist_mask
                    else:
                        if counters[index] > 0:
                            counters[index] -= 1
                        history = (history << 1) & hist_mask
                elif kind is LOAD or kind is STORE:
                    is_store = kind is STORE
                    if is_store:
                        stores += 1
                    else:
                        loads += 1
                    addr = record.addr
                    block = addr & ~l1_mask
                    l1_set = l1_sets[(block >> l1_shift) % l1_nsets]
                    if block in l1_set:
                        l1_set.move_to_end(block)
                        if is_store:
                            l1_set[block] = True
                        continue
                    l1_misses += 1
                    # L2 demand lookup + fill (mirrors _fetch_from_l2;
                    # an L2 victim write-back to memory is timing-only).
                    l2_block = addr & ~l2_mask
                    l2_set = l2_sets[(l2_block >> l2_shift) % l2_nsets]
                    if l2_block in l2_set:
                        l2_set.move_to_end(l2_block)
                    else:
                        if len(l2_set) >= l2_ways:
                            l2_set.popitem(last=False)
                        l2_set[l2_block] = False
                    # L1 fill; a dirty victim writes back into the L2
                    # (mirrors _write_back_l1_victim: mark dirty if
                    # resident, else fill dirty).
                    if len(l1_set) >= l1_ways:
                        victim_block, victim_dirty = l1_set.popitem(
                            last=False
                        )
                        if victim_dirty:
                            vb = victim_block & ~l2_mask
                            vset = l2_sets[(vb >> l2_shift) % l2_nsets]
                            if vb in vset:
                                vset[vb] = True
                            else:
                                if len(vset) >= l2_ways:
                                    vset.popitem(last=False)
                                vset[vb] = True
                    l1_set[block] = is_store
                    if not is_store:
                        # Train predictor state on the miss stream, like
                        # _finish_miss (loads only) — warm_l1_miss skips
                        # the transient allocation work.
                        pf_warm(record.pc, addr)
        finally:
            bp._history = history
            self.instructions += instructions
            self.loads += loads
            self.stores += stores
            self.branches += branches
            self.l1_misses += l1_misses
        return pulled
