"""SMARTS-style systematic sampling over the detailed simulator.

The detailed core costs microseconds of CPython per instruction; the
structural fix (ROADMAP: "Raw speed") is to stop simulating every
instruction in detail.  This package extends the functional golden
model's idea (:mod:`repro.integrity.golden`) into a **fast-forward
engine** (:mod:`repro.sampling.fastforward`) that warms the *detailed
machine's own* L1/L2 tag state, gshare predictor, and prefetcher tables
at trace-replay speed, and a **sampling driver**
(:mod:`repro.sampling.driver`) that alternates fast-forward gaps with
detailed measured windows and stitches per-window IPC into a whole-trace
estimate with a confidence interval.

Enable it with :meth:`repro.config.SimConfig.with_sampling` or
``repro-sim run/sweep --sample PERIOD:WINDOW:WARMUP``; the detailed
path is untouched when ``SimConfig.sampling`` is ``None``.

For machine *comparisons* use the matched-pair driver
(:mod:`repro.sampling.paired`, ``repro-sim compare --sample`` or
``sweep --sample-paired``): sampling every machine over the same window
grid cancels the fast-forward cold-start bias in relative-IPC and
speedup estimates — the quantities the paper's figures actually report.
"""

from repro.sampling.driver import resume_sampled, run_sampled
from repro.sampling.fastforward import FastForwardEngine
from repro.sampling.paired import (
    PairedResult,
    PairStats,
    paired_from_results,
    run_paired,
)

__all__ = [
    "FastForwardEngine",
    "PairStats",
    "PairedResult",
    "paired_from_results",
    "resume_sampled",
    "run_paired",
    "run_sampled",
]
