"""Matched-pair sampled comparisons: N machines, one window grid.

The sampler's dominant error term is a systematic cold-start *bias*:
functional fast-forward warms tags and predictor tables faster than
detailed execution would, so every measured window opens a little
optimistic.  An absolute sampled IPC inherits that bias — but the
paper's figures compare *machines*, and when both machines of a
comparison are sampled over the **same midpoint window grid from the
same trace** the bias term is (to first order) common to both legs and
cancels in the ratio.  That is what this driver does:

- the trace is materialised once and every leg replays the identical
  record sequence (one shared trace cursor, not one per-leg generator
  that could drift);
- every leg runs the same :class:`~repro.config.SamplingConfig`, so
  window placement — a pure function of record counts — produces the
  same grid, which the driver *verifies* window by window
  (:class:`~repro.errors.IntegrityError` on any mismatch rather than a
  silently skewed ratio);
- per-window IPC ratios against the baseline leg are aggregated into a
  mean and a 95% confidence interval, alongside the ratio of the
  stitched whole-trace IPCs (the Figure 5 speedup estimator).

:func:`paired_from_results` is the pure stitching step, split out so a
snapshot-resumed leg can be folded into a :class:`PairedResult` that is
bit-identical to an uninterrupted paired run (asserted by the tests).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.config import SimConfig
from repro.errors import IntegrityError, SimulationError
from repro.sim.results import SimulationResult
from repro.stats import ratio
from repro.trace.record import TraceRecord


@dataclass
class PairStats:
    """One machine's paired comparison against the baseline leg."""

    label: str
    baseline: str
    #: Ratio of stitched sampled IPCs (label / baseline) — the paired
    #: whole-trace relative-IPC estimate.
    rel_ipc: float
    #: ``100 * (rel_ipc - 1)``: the Figure 5 percent-speedup metric.
    speedup_percent: float
    #: Mean of the per-window IPC ratios.
    ratio_mean: float
    #: 95% confidence interval over the per-window IPC ratios.
    ratio_ci95: float
    #: Number of matched window pairs behind the estimate.
    windows: int


@dataclass
class PairedResult:
    """All legs of a matched-pair sampled comparison, stitched."""

    baseline: str
    #: The shared sampling shape every leg ran under.
    sample: Dict[str, float]
    #: Stitched per-leg results, insertion-ordered (baseline first).
    results: Dict[str, SimulationResult]
    #: Uncapped per-window rows per leg (index, ipc, instructions,
    #: cycles, miss_rate, start_record).
    window_rows: Dict[str, List[dict]] = field(default_factory=dict)
    #: Per-leg paired statistics (every non-baseline label).
    pairs: Dict[str, PairStats] = field(default_factory=dict)

    @property
    def labels(self) -> List[str]:
        return list(self.results)

    def to_dict(self) -> dict:
        """JSON-ready form (manifests, report rendering)."""
        return {
            "paired": True,
            "baseline": self.baseline,
            "sample": dict(self.sample),
            "results": {
                label: asdict(result)
                for label, result in self.results.items()
            },
            "window_rows": {
                label: [dict(row) for row in rows]
                for label, rows in self.window_rows.items()
            },
            "pairs": {
                label: asdict(stats)
                for label, stats in self.pairs.items()
            },
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "PairedResult":
        """Rebuild a result a manifest round-tripped through JSON."""
        return cls(
            baseline=payload["baseline"],
            sample=dict(payload.get("sample", {})),
            results={
                label: SimulationResult(**fields)
                for label, fields in payload.get("results", {}).items()
            },
            window_rows={
                label: [dict(row) for row in rows]
                for label, rows in payload.get("window_rows", {}).items()
            },
            pairs={
                label: PairStats(**fields)
                for label, fields in payload.get("pairs", {}).items()
            },
        )


def _check_same_grid(
    baseline: str, base_rows: List[dict], label: str, rows: List[dict]
) -> None:
    """Both legs must have measured the identical window grid."""
    if len(rows) != len(base_rows):
        raise IntegrityError(
            f"paired legs disagree on the window grid: {baseline!r} "
            f"measured {len(base_rows)} windows but {label!r} measured "
            f"{len(rows)}"
        )
    for base_row, row in zip(base_rows, rows):
        if (
            base_row["start_record"] != row["start_record"]
            or base_row["instructions"] != row["instructions"]
        ):
            raise IntegrityError(
                f"paired legs disagree on window {row['index']}: "
                f"{baseline!r} measured {base_row['instructions']} "
                f"instructions at record {base_row['start_record']} but "
                f"{label!r} measured {row['instructions']} at record "
                f"{row['start_record']}"
            )


def paired_from_results(
    results: Dict[str, SimulationResult],
    window_rows: Dict[str, List[dict]],
    baseline: Optional[str] = None,
    sample: Optional[Dict[str, float]] = None,
) -> PairedResult:
    """Stitch per-leg sampled results into a :class:`PairedResult`.

    Pure function of its inputs: a leg that was snapshot-resumed stitches
    to the same paired statistics as an uninterrupted one.  ``baseline``
    defaults to the first label; every leg's window grid is verified
    against the baseline's.
    """
    if len(results) < 2:
        raise SimulationError(
            "a paired comparison needs at least two legs, got "
            f"{len(results)}"
        )
    labels = list(results)
    if baseline is None:
        baseline = labels[0]
    if baseline not in results:
        raise SimulationError(
            f"paired baseline {baseline!r} is not one of {labels}"
        )
    base_rows = window_rows.get(baseline, [])
    if not base_rows:
        raise SimulationError(
            f"paired baseline {baseline!r} measured no windows"
        )
    if sample is None:
        extra = results[baseline].extra
        sample = {
            key: extra[key]
            for key in (
                "sample_period", "sample_window", "sample_warmup",
                "sample_strata", "sample_warm_confidence",
            )
            if key in extra
        }
    pairs: Dict[str, PairStats] = {}
    base_ipc = results[baseline].ipc
    for label in labels:
        if label == baseline:
            continue
        rows = window_rows.get(label, [])
        _check_same_grid(baseline, base_rows, label, rows)
        ratios = [
            ratio(row["ipc"], base_row["ipc"])
            for base_row, row in zip(base_rows, rows)
        ]
        mean = sum(ratios) / len(ratios)
        ci95 = 0.0
        if len(ratios) >= 2:
            variance = sum((x - mean) ** 2 for x in ratios) / (
                len(ratios) - 1
            )
            ci95 = 1.96 * math.sqrt(variance) / math.sqrt(len(ratios))
        rel = ratio(results[label].ipc, base_ipc)
        pairs[label] = PairStats(
            label=label,
            baseline=baseline,
            rel_ipc=rel,
            speedup_percent=100.0 * (rel - 1.0),
            ratio_mean=mean,
            ratio_ci95=ci95,
            windows=len(ratios),
        )
    return PairedResult(
        baseline=baseline,
        sample=sample,
        results=dict(results),
        window_rows={label: list(window_rows[label]) for label in labels},
        pairs=pairs,
    )


def run_paired(
    configs: Dict[str, SimConfig],
    trace: Iterable[TraceRecord],
    max_instructions: Optional[int] = None,
    baseline: Optional[str] = None,
    snapshot_every: Optional[int] = None,
    snapshot_sink: Optional[Callable[[str, object], None]] = None,
) -> PairedResult:
    """Sample every config over the same window grid of one trace.

    ``configs`` maps labels to machine configs; each must carry the
    *same* :class:`~repro.config.SamplingConfig` (different sampling
    shapes would place different grids, and the bias would no longer
    cancel).  ``baseline`` names the denominator leg (default: the first
    label).  ``snapshot_sink``, when given with ``snapshot_every``,
    receives ``(label, snapshot)`` pairs — each leg snapshots like an
    ordinary sampled run and resumes through
    :func:`repro.sampling.driver.resume_sampled`.
    """
    from repro.sampling.driver import run_sampled
    from repro.sim.simulator import Simulator

    if len(configs) < 2:
        raise SimulationError(
            f"a paired comparison needs at least two configs, got "
            f"{len(configs)}"
        )
    labels = list(configs)
    sampling = configs[labels[0]].sampling
    if sampling is None:
        raise SimulationError(
            f"paired config {labels[0]!r} has no SimConfig.sampling"
        )
    for label in labels[1:]:
        other = configs[label].sampling
        if other is None:
            raise SimulationError(
                f"paired config {label!r} has no SimConfig.sampling"
            )
        if other != sampling:
            raise SimulationError(
                f"paired configs must share one SamplingConfig: "
                f"{label!r} has {other}, {labels[0]!r} has {sampling}"
            )
    # One shared trace cursor: materialise the record sequence once so
    # every leg replays byte-identical input (a per-leg generator could
    # legally differ between instantiations).  Workload generators are
    # unbounded streams, so only the records the legs can consume are
    # pulled — no leg reads past ``max_instructions``.
    if isinstance(trace, (list, tuple)):
        records = trace
    elif max_instructions is not None:
        records = list(itertools.islice(trace, max_instructions))
    else:
        records = list(trace)
    results: Dict[str, SimulationResult] = {}
    window_rows: Dict[str, List[dict]] = {}
    for label in labels:
        sink = None
        if snapshot_sink is not None:
            bound_label = label

            def sink(snapshot, _label=bound_label):
                snapshot_sink(_label, snapshot)

        rows: List[dict] = []
        results[label] = run_sampled(
            Simulator(configs[label]),
            iter(records),
            max_instructions=max_instructions,
            label=label,
            snapshot_every=snapshot_every,
            snapshot_sink=sink,
            window_sink=rows,
        )
        window_rows[label] = rows
    return paired_from_results(
        results, window_rows, baseline=baseline
    )
