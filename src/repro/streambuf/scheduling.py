"""Predictor-port and bus arbitration across stream buffers (Section 4.4).

Only one stream buffer may use the shared address predictor each cycle,
and only one may launch a prefetch on the L1-L2 bus.  The paper compares
round-robin arbitration against priority counters (incremented by 2 on
every stream-buffer hit, aged by 1 every 10 L1 data-cache misses, LRU
breaking ties).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable, List, Optional

from repro.config import SchedulingPolicy, StreamBufferConfig
from repro.streambuf.buffer import StreamBuffer

#: Predicate selecting buffers eligible for the resource being arbitrated.
Eligible = Callable[[StreamBuffer], bool]


class Scheduler(ABC):
    """Chooses which eligible buffer wins a shared resource this cycle.

    Concrete schedulers count their successful picks in
    ``prediction_grants`` / ``prefetch_grants`` so the observability
    layer can report how contended each port was.
    """

    def __init__(self) -> None:
        self.prediction_grants = 0
        self.prefetch_grants = 0

    @abstractmethod
    def pick_for_prediction(
        self, buffers: List[StreamBuffer], eligible: Eligible
    ) -> Optional[StreamBuffer]:
        """The buffer that gets the predictor port, or None."""

    @abstractmethod
    def pick_for_prefetch(
        self, buffers: List[StreamBuffer], eligible: Eligible
    ) -> Optional[StreamBuffer]:
        """The buffer that gets the L1-L2 bus, or None."""


class RoundRobinScheduler(Scheduler):
    """Equal chances for every buffer, as described in the paper:
    separate rotating pointers for prediction and prefetching."""

    def __init__(self) -> None:
        super().__init__()
        self._predict_pointer = 0
        self._prefetch_pointer = 0

    def _scan(
        self, buffers: List[StreamBuffer], eligible: Eligible, start: int
    ) -> Optional[int]:
        count = len(buffers)
        for offset in range(count):
            index = (start + offset) % count
            if eligible(buffers[index]):
                return index
        return None

    def pick_for_prediction(
        self, buffers: List[StreamBuffer], eligible: Eligible
    ) -> Optional[StreamBuffer]:
        index = self._scan(buffers, eligible, self._predict_pointer)
        if index is None:
            return None
        self._predict_pointer = (index + 1) % len(buffers)
        self.prediction_grants += 1
        return buffers[index]

    def pick_for_prefetch(
        self, buffers: List[StreamBuffer], eligible: Eligible
    ) -> Optional[StreamBuffer]:
        index = self._scan(buffers, eligible, self._prefetch_pointer)
        if index is None:
            return None
        self._prefetch_pointer = (index + 1) % len(buffers)
        self.prefetch_grants += 1
        return buffers[index]


class PriorityScheduler(Scheduler):
    """Highest priority counter first; LRU among equals (Section 4.4)."""

    def _pick(
        self, buffers: List[StreamBuffer], eligible: Eligible
    ) -> Optional[StreamBuffer]:
        # One pass, no candidate lists: this runs per cycle per port.
        # Recency tie-break: among equal priorities the most recently
        # useful buffer wins the port, keeping the live stream ahead of
        # stale ones (our reading of the paper's "LRU policy" for ties).
        # Strict > keeps the first of fully tied buffers, like max().
        best = None
        best_key = (0, 0)
        for buffer in buffers:
            if not eligible(buffer):
                continue
            key = (int(buffer.priority), buffer.last_use_cycle)
            if best is None or key > best_key:
                best = buffer
                best_key = key
        return best

    def pick_for_prediction(
        self, buffers: List[StreamBuffer], eligible: Eligible
    ) -> Optional[StreamBuffer]:
        winner = self._pick(buffers, eligible)
        if winner is not None:
            self.prediction_grants += 1
        return winner

    def pick_for_prefetch(
        self, buffers: List[StreamBuffer], eligible: Eligible
    ) -> Optional[StreamBuffer]:
        winner = self._pick(buffers, eligible)
        if winner is not None:
            self.prefetch_grants += 1
        return winner


def make_scheduler(config: StreamBufferConfig) -> Scheduler:
    """Build the scheduler selected by ``config.scheduling``."""
    if config.scheduling == SchedulingPolicy.ROUND_ROBIN:
        return RoundRobinScheduler()
    if config.scheduling == SchedulingPolicy.PRIORITY:
        return PriorityScheduler()
    raise ValueError(f"unknown scheduling policy: {config.scheduling}")
