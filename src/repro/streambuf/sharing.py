"""Online sharing of the stream-buffer entry pool (beyond the paper).

The paper fixes the prefetch hardware at 8 stream buffers x 4 entries
each.  This module relaxes that partition: the 32 entries become one
shared pool allocated online across the live streams, behind a small
policy interface (:class:`SharingPolicy`):

- ``fixed`` keeps the paper's static partition.  It is the default and
  is bit-identical to the pre-sharing simulator: buffers own their
  entries statically and no pool exists.
- ``harmonic`` admits every prediction while free pool credit remains
  and, once the pool is full, evicts from the stream holding the
  *longest* queue — longest-queue eviction, the core mechanism of the
  (2+ln n)-competitive online buffer-sharing policy (arXiv:2511.06514).
  A stream may only steal from a strictly longer queue, so depths stay
  balanced under contention while an under-subscribed pool lets a hot
  stream run arbitrarily deep.
- ``credence`` augments harmonic with a prediction signal
  (arXiv:2401.02801), using the per-stream priority counters the
  simulator already maintains as its confidence oracle, consulted as a
  binary trusted/untrusted advice bit: a stream whose predictions keep
  producing hits steals from untrusted streams freely, regardless of
  queue length, while harmonic's longest-queue rule arbitrates within
  a trust class — trusting the predictor when it is informative while
  retaining the robust policy's behaviour when it is not.

Pooled policies transfer :class:`~repro.streambuf.buffer.StreamBufferEntry`
objects between buffers: a buffer's ``entries`` list holds exactly the
entries it currently owns, so every existing scan (refresh, tag match,
prefetchable/oldest queries) works unchanged on a variable-depth queue.
Conservation — entries in use never exceed the pool size and no entry is
owned by two streams — is enforced by
:func:`repro.integrity.invariants.check_stream_buffers`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.config import BufferSharing, StreamBufferConfig
from repro.streambuf.buffer import EntryState, StreamBuffer, StreamBufferEntry


class EntryPool:
    """Occupancy bookkeeping and statistics for the shared entry pool."""

    def __init__(self, size: int) -> None:
        self.size = size
        #: Entries currently owned by some buffer.
        self.allocated = 0
        # Statistics (reset at the warm-up boundary).
        self.acquires = 0  # grants served from free pool credit
        self.steals = 0  # grants served by evicting another stream
        self.denials = 0  # requests the policy refused
        self.releases = 0  # entries returned (hits, drops, stream death)
        self.evicted_inflight = 0  # stolen entries whose prefetch was live

    @property
    def free(self) -> int:
        """Pool credit not currently backing any buffer entry."""
        return self.size - self.allocated

    def reset_stats(self) -> None:
        """Zero the event counters; occupancy is state, not a statistic."""
        self.acquires = 0
        self.steals = 0
        self.denials = 0
        self.releases = 0
        self.evicted_inflight = 0

    def __repr__(self) -> str:
        return f"EntryPool({self.allocated}/{self.size} allocated)"


class SharingPolicy(ABC):
    """How stream-buffer entries are partitioned across streams.

    The controller consults the policy at exactly three points: whether a
    buffer may compete for the predictor port (:meth:`wants_prediction`),
    where the entry backing a fresh prediction comes from
    (:meth:`take_entry`), and what happens to entries a stream no longer
    needs (:meth:`release_entry` / :meth:`release_stream`).
    """

    #: True when entries live in a shared pool rather than per buffer.
    pooled: bool = False

    def __init__(self) -> None:
        #: The shared pool, or ``None`` under fixed partitioning.
        self.pool: Optional[EntryPool] = None
        self._controller = None

    def bind(self, controller) -> None:
        """Attach the owning controller (for buffers, stats, tracing)."""
        self._controller = controller

    @abstractmethod
    def wants_prediction(self, buffer: StreamBuffer, epoch: int) -> bool:
        """True when ``buffer`` should compete for the predictor port."""

    @abstractmethod
    def take_entry(
        self, buffer: StreamBuffer, cycle: int
    ) -> Optional[StreamBufferEntry]:
        """An entry for ``buffer`` to hold a fresh prediction, or None."""

    def release_entry(
        self, buffer: StreamBuffer, entry: StreamBufferEntry
    ) -> None:
        """Return one consumed (already cleared) entry to the pool."""

    def release_stream(self, buffer: StreamBuffer) -> None:
        """Return every entry owned by ``buffer`` (stream death)."""


class FixedSharing(SharingPolicy):
    """The paper's static 8 x 4 partition: each buffer owns its entries.

    Every method delegates straight to the buffer's own static-entry
    behaviour, so a controller built with this policy executes exactly
    the pre-sharing code path (the bit-identity tests assert it).
    """

    pooled = False

    def wants_prediction(self, buffer: StreamBuffer, epoch: int) -> bool:
        """Delegate to the buffer's own static free-entry test."""
        return buffer.wants_prediction(epoch)

    def take_entry(
        self, buffer: StreamBuffer, cycle: int
    ) -> Optional[StreamBufferEntry]:
        """A statically owned FREE entry, exactly as before sharing."""
        return buffer.free_entry()


class PooledSharing(SharingPolicy):
    """Common machinery for policies drawing from one shared pool.

    Buffers start with zero entries and grow on demand: free pool credit
    is always granted; a full pool asks the concrete policy for a victim
    stream (:meth:`_choose_victim`) and transfers that stream's youngest
    entry to the requester.  Subclasses implement only the victim choice.
    """

    pooled = True

    def __init__(self, config: StreamBufferConfig) -> None:
        super().__init__()
        self.config = config
        self.pool = EntryPool(config.pool_size)

    def wants_prediction(self, buffer: StreamBuffer, epoch: int) -> bool:
        """Port eligibility under pooling: entry available or winnable."""
        if not buffer.allocated or buffer.state is None:
            return False
        if buffer.exhausted_epoch is not None and buffer.exhausted_epoch == epoch:
            return False
        if buffer.free_entry() is not None:
            return True
        if self.pool.free > 0:
            return True
        return self._choose_victim(buffer) is not None

    def take_entry(
        self, buffer: StreamBuffer, cycle: int
    ) -> Optional[StreamBufferEntry]:
        """Grant from free credit, else evict per the concrete policy."""
        entry = buffer.free_entry()
        if entry is not None:
            return entry
        pool = self.pool
        if pool.free > 0:
            pool.allocated += 1
            pool.acquires += 1
            entry = StreamBufferEntry()
            buffer.entries.append(entry)
            return entry
        victim = self._choose_victim(buffer)
        if victim is None:
            pool.denials += 1
            return None
        return self._steal(victim, buffer, cycle)

    def release_entry(
        self, buffer: StreamBuffer, entry: StreamBufferEntry
    ) -> None:
        """A consumed entry leaves its buffer and frees pool credit."""
        buffer.entries.remove(entry)
        self.pool.allocated -= 1
        self.pool.releases += 1

    def release_stream(self, buffer: StreamBuffer) -> None:
        """Stream death returns the whole queue to the pool at once."""
        count = len(buffer.entries)
        if count:
            self.pool.allocated -= count
            self.pool.releases += count
            del buffer.entries[:]

    # -- eviction ------------------------------------------------------

    @abstractmethod
    def _choose_victim(
        self, requester: StreamBuffer
    ) -> Optional[StreamBuffer]:
        """The stream to evict from for ``requester``, or None to deny."""

    def _steal(
        self, victim: StreamBuffer, requester: StreamBuffer, cycle: int
    ) -> StreamBufferEntry:
        """Move the victim's youngest entry to the requester, cleared.

        The youngest (most recently predicted) entry is the deepest
        speculation in the victim's stream — evicting it forfeits the
        least likely hit.  A stolen in-flight or ready prefetch counts
        as discarded, mirroring reallocation's accounting.
        """
        entry = None
        for candidate in victim.entries:
            if not candidate.occupied:
                entry = candidate  # a free entry is cheaper than any eviction
                break
            if entry is None or candidate.predicted_cycle > entry.predicted_cycle:
                entry = candidate
        assert entry is not None, "victim with no entries chosen for eviction"
        controller = self._controller
        if entry.state in (EntryState.IN_FLIGHT, EntryState.READY):
            self.pool.evicted_inflight += 1
            if controller is not None:
                controller.prefetches_discarded += 1
        trace = None if controller is None else controller.obs_trace
        if trace is not None and trace.wants("pool"):
            trace.emit(
                cycle, "pool", "steal",
                victim=victim.index, to=requester.index,
                block=entry.block, state=entry.state.value,
            )
        victim.entries.remove(entry)
        entry.clear()
        requester.entries.append(entry)
        self.pool.steals += 1
        return entry


#: A steal must *strictly reduce* queue imbalance: the victim needs
#: more entries than the requester by this margin, so the post-steal
#: depths are still ordered and never swap back.  With a bare "strictly
#: longer" rule two queues differing by one ping-pong the same entry
#: forever — each bounce discarding a live prefetch and re-issuing it
#: on the bus — which livelocks the whole machine.  Two is the minimum
#: that terminates; three adds hysteresis against credit-slosh between
#: a draining stream and a stacking one (each slosh steal evicts a
#: purchased prefetch, and the bus is the scarce resource).
_STEAL_MARGIN = 3


class HarmonicSharing(PooledSharing):
    """Longest-queue eviction (arXiv:2511.06514).

    When the pool is full the stream holding the most entries loses its
    youngest one — but only to a queue shorter by :data:`_STEAL_MARGIN`
    or more, so every eviction strictly rebalances depths and the churn
    terminates.  With slack in the pool every request is granted, which
    is where the win over fixed partitioning comes from: one or two hot
    streams can run 10+ entries deep while idle streams hold nothing.
    """

    def _choose_victim(
        self, requester: StreamBuffer
    ) -> Optional[StreamBuffer]:
        """The longest queue (LRU breaking ties), if longer by margin."""
        controller = self._controller
        victim = None
        victim_key = (0, 0, 0)
        for buffer in controller.buffers:
            occupancy = len(buffer.entries)
            if occupancy == 0:
                continue
            key = (occupancy, -buffer.last_use_cycle, -buffer.index)
            if victim is None or key > victim_key:
                victim = buffer
                victim_key = key
        if victim is None or victim is requester:
            return None
        if len(victim.entries) < len(requester.entries) + _STEAL_MARGIN:
            return None
        return victim


class CredenceSharing(PooledSharing):
    """Prediction-augmented sharing (arXiv:2401.02801).

    The prediction signal is the per-stream priority counter — bumped on
    every stream-buffer hit, aged on demand misses — i.e. the live
    confidence that this stream's predictions are paying off.  Following
    the learning-augmented literature, the signal is consumed as a
    *binary* advice bit: a stream is **trusted** when its counter sits
    in the upper half of the priority range, untrusted below.  A trusted
    requester evicts from untrusted streams freely (longest queue, then
    LRU); an untrusted requester is denied rather than served by
    evicting a trusted stream, so a stream whose predictions keep paying
    off holds its deep queue against streams the predictor says are
    worth less.  *Within* a trust class harmonic's margin rule applies
    — which is what keeps one trusted stream from monopolising the pool
    against another.  (A raw greater/less comparison does exactly that:
    the first stream to saturate its counter strip-mines every slightly
    less confident peer, and the starved peer can never earn the hits
    to climb back — the classic advice-following failure mode the
    binary consultation avoids.)  With a flat confidence landscape
    every stream lands in one class and the policy degrades to exactly
    :class:`HarmonicSharing`, retaining its robustness.
    """

    def _trusted(self, buffer: StreamBuffer) -> bool:
        """The advice bit: counter in the upper half of its range."""
        return 2 * int(buffer.priority) >= self.config.priority_max

    def _choose_victim(
        self, requester: StreamBuffer
    ) -> Optional[StreamBuffer]:
        """Untrusted streams first; harmonic's rule within a trust class."""
        controller = self._controller
        requester_trusted = self._trusted(requester)
        victim = None
        victim_key = (0, 0, 0)
        fallback = None
        fallback_key = (0, 0, 0)
        for buffer in controller.buffers:
            occupancy = len(buffer.entries)
            if occupancy == 0 or buffer is requester:
                continue
            key = (occupancy, -buffer.last_use_cycle, -buffer.index)
            if self._trusted(buffer):
                if not requester_trusted:
                    continue  # never evict trusted for untrusted
                if fallback is None or key > fallback_key:
                    fallback = buffer
                    fallback_key = key
            elif requester_trusted:
                if victim is None or key > victim_key:
                    victim = buffer
                    victim_key = key
            else:
                if fallback is None or key > fallback_key:
                    fallback = buffer
                    fallback_key = key
        if victim is not None:
            return victim
        if fallback is None:
            return None
        if len(fallback.entries) < len(requester.entries) + _STEAL_MARGIN:
            return None
        return fallback


def make_sharing_policy(config: StreamBufferConfig) -> SharingPolicy:
    """Build the sharing policy selected by ``config.sharing``."""
    if config.sharing == BufferSharing.FIXED:
        return FixedSharing()
    if config.sharing == BufferSharing.HARMONIC:
        return HarmonicSharing(config)
    if config.sharing == BufferSharing.CREDENCE:
        return CredenceSharing(config)
    raise ValueError(f"unknown buffer-sharing policy: {config.sharing}")
