"""Stream buffers: the paper's prefetching hardware (Sections 3.3.2 and 4).

A single controller class implements every architecture in the paper's
evaluation by composing three orthogonal pieces:

- an **address predictor** (sequential, PC-stride, or Stride-Filtered
  Markov) that generates the prefetch stream;
- an **allocation filter** (always / two-miss / confidence) deciding which
  missing loads get a buffer;
- a **scheduler** (round-robin / priority counters) arbitrating the shared
  predictor port and the L1-L2 bus;
- a **sharing policy** (fixed / harmonic / credence) deciding whether the
  entry capacity is statically partitioned as in the paper or shared as
  one online-allocated pool (:mod:`repro.streambuf.sharing`).
"""

from repro.streambuf.allocation import (
    AllocationFilter,
    AlwaysAllocate,
    ConfidenceAllocationFilter,
    TwoMissFilter,
    make_allocation_filter,
)
from repro.streambuf.buffer import EntryState, StreamBuffer, StreamBufferEntry
from repro.streambuf.controller import (
    SequentialPredictor,
    StreamBufferController,
    build_prefetcher,
)
from repro.streambuf.scheduling import (
    PriorityScheduler,
    RoundRobinScheduler,
    Scheduler,
    make_scheduler,
)
from repro.streambuf.sharing import (
    CredenceSharing,
    EntryPool,
    FixedSharing,
    HarmonicSharing,
    SharingPolicy,
    make_sharing_policy,
)

__all__ = [
    "AllocationFilter",
    "AlwaysAllocate",
    "ConfidenceAllocationFilter",
    "TwoMissFilter",
    "make_allocation_filter",
    "EntryState",
    "StreamBuffer",
    "StreamBufferEntry",
    "SequentialPredictor",
    "StreamBufferController",
    "build_prefetcher",
    "PriorityScheduler",
    "RoundRobinScheduler",
    "Scheduler",
    "make_scheduler",
    "CredenceSharing",
    "EntryPool",
    "FixedSharing",
    "HarmonicSharing",
    "SharingPolicy",
    "make_sharing_policy",
]
