"""Stream-buffer allocation filters (Section 4.3).

Allocation is the scarce resource: every L1 miss that also misses the
stream buffers is a potential allocation, and letting them all through
causes *stream thrashing* — buffers are reallocated before their streams
produce any hits.  The paper evaluates a generalized two-miss filter and
its new confidence-based filter.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional

from repro.config import AllocationPolicy, StreamBufferConfig
from repro.predictors.base import AddressPredictor
from repro.streambuf.buffer import StreamBuffer


def _lru_choice(buffers: List[StreamBuffer]) -> StreamBuffer:
    """Least-recently-used buffer among ``buffers`` (must be non-empty)."""
    return min(buffers, key=lambda buffer: buffer.last_use_cycle)


class AllocationFilter(ABC):
    """Decides whether a missing load may claim a buffer, and which one."""

    @abstractmethod
    def choose_victim(
        self,
        pc: int,
        predictor: AddressPredictor,
        buffers: List[StreamBuffer],
    ) -> Optional[StreamBuffer]:
        """Return the buffer to (re)allocate, or None to deny allocation."""

    def admits(self, pc: int, predictor: AddressPredictor) -> bool:
        """May this load restart a stream it already owns?

        Admission only — no victim choice is involved.
        """
        return True


class AlwaysAllocate(AllocationFilter):
    """No filtering: every stream-buffer miss allocates (Jouppi's model)."""

    def choose_victim(
        self,
        pc: int,
        predictor: AddressPredictor,
        buffers: List[StreamBuffer],
    ) -> Optional[StreamBuffer]:
        unallocated = [buffer for buffer in buffers if not buffer.allocated]
        if unallocated:
            return unallocated[0]
        return _lru_choice(buffers)


class TwoMissFilter(AllocationFilter):
    """Generalized two-miss filtering.

    A load is admitted once it has missed twice in a row *and* both times
    would have been predicted correctly — by matching strides for the
    pure stride predictor, or by either SFM component for the PSB
    (the predictor's :meth:`allocation_ready` encodes which).  The victim
    is the LRU buffer.
    """

    def admits(self, pc: int, predictor: AddressPredictor) -> bool:
        return predictor.allocation_ready(pc)

    def choose_victim(
        self,
        pc: int,
        predictor: AddressPredictor,
        buffers: List[StreamBuffer],
    ) -> Optional[StreamBuffer]:
        if not predictor.allocation_ready(pc):
            return None
        unallocated = [buffer for buffer in buffers if not buffer.allocated]
        if unallocated:
            return unallocated[0]
        return _lru_choice(buffers)


class ConfidenceAllocationFilter(AllocationFilter):
    """The paper's confidence-guided allocation.

    A load contends for a buffer only when its accuracy confidence is at
    least ``confidence_threshold`` (1 in the paper).  It then must *beat a
    buffer*: only buffers whose priority counter is <= the load's
    confidence may be replaced; if none qualifies, no allocation happens.
    Among qualifying buffers the lowest priority wins, LRU breaking ties —
    so buffers that keep producing hits stay allocated.
    """

    def __init__(self, config: StreamBufferConfig) -> None:
        self.config = config

    def admits(self, pc: int, predictor: AddressPredictor) -> bool:
        return predictor.confidence_for(pc) >= self.config.confidence_threshold

    def choose_victim(
        self,
        pc: int,
        predictor: AddressPredictor,
        buffers: List[StreamBuffer],
    ) -> Optional[StreamBuffer]:
        confidence = predictor.confidence_for(pc)
        if confidence < self.config.confidence_threshold:
            return None
        unallocated = [buffer for buffer in buffers if not buffer.allocated]
        if unallocated:
            return unallocated[0]
        beatable = [
            buffer for buffer in buffers if int(buffer.priority) <= confidence
        ]
        if not beatable:
            return None
        lowest = min(int(buffer.priority) for buffer in beatable)
        candidates = [
            buffer for buffer in beatable if int(buffer.priority) == lowest
        ]
        return _lru_choice(candidates)


def make_allocation_filter(config: StreamBufferConfig) -> AllocationFilter:
    """Build the filter selected by ``config.allocation``."""
    if config.allocation == AllocationPolicy.ALWAYS:
        return AlwaysAllocate()
    if config.allocation == AllocationPolicy.TWO_MISS:
        return TwoMissFilter()
    if config.allocation == AllocationPolicy.CONFIDENCE:
        return ConfidenceAllocationFilter(config)
    raise ValueError(f"unknown allocation policy: {config.allocation}")
