"""A single stream buffer and its entries (Section 4.1).

Each of the 8 buffers holds its entries and the per-stream prediction
history (:class:`~repro.predictors.base.StreamState`).  Under the
paper's fixed partitioning every buffer statically owns 4 entries;
under a pooled sharing policy (:mod:`repro.streambuf.sharing`) the
``entries`` list grows and shrinks as the stream acquires and releases
pool credit.  Entries move through a small lifecycle::

    FREE -> PREDICTED -> IN_FLIGHT -> READY -> (hit) FREE

Lookups are fully associative across all buffers and entries (Farkas et
al.'s enhancement, which the paper models).
"""

from __future__ import annotations

from enum import Enum
from typing import List, Optional

from repro.predictors.base import StreamState
from repro.predictors.saturating import SaturatingCounter


class EntryState(Enum):
    """Lifecycle state of one stream-buffer entry."""

    FREE = "free"
    PREDICTED = "predicted"  # has an address, waiting for the bus
    IN_FLIGHT = "in-flight"  # prefetch issued, data not yet back
    READY = "ready"  # data resident in the entry


class StreamBufferEntry:
    """One cache-block slot in a stream buffer."""

    __slots__ = ("state", "block", "ready_cycle", "predicted_cycle")

    def __init__(self) -> None:
        self.state = EntryState.FREE
        self.block = 0
        self.ready_cycle = 0
        self.predicted_cycle = 0

    def hold_prediction(self, block: int, cycle: int) -> None:
        """Latch a predicted block address, waiting for the bus."""
        self.state = EntryState.PREDICTED
        self.block = block
        self.predicted_cycle = cycle

    def mark_in_flight(self, ready_cycle: int) -> None:
        """The prefetch launched; data arrives at ``ready_cycle``."""
        self.state = EntryState.IN_FLIGHT
        self.ready_cycle = ready_cycle

    def refresh(self, cycle: int) -> None:
        """Promote IN_FLIGHT to READY once the data has arrived."""
        if self.state == EntryState.IN_FLIGHT and self.ready_cycle <= cycle:
            self.state = EntryState.READY

    def clear(self) -> None:
        """Reset to FREE, dropping any held block."""
        self.state = EntryState.FREE
        self.block = 0
        self.ready_cycle = 0
        self.predicted_cycle = 0

    @property
    def occupied(self) -> bool:
        """True when this entry holds a block in any non-FREE state."""
        return self.state != EntryState.FREE

    def __repr__(self) -> str:
        return f"Entry({self.state.value}, block={self.block:#x})"


class StreamBuffer:
    """One stream: N entries plus the stream's speculative predictor state."""

    def __init__(self, index: int, num_entries: int, priority_max: int) -> None:
        self.index = index
        self.entries: List[StreamBufferEntry] = [
            StreamBufferEntry() for _ in range(num_entries)
        ]
        self.state: Optional[StreamState] = None
        self.priority = SaturatingCounter(maximum=priority_max)
        self.allocated = False
        self.exhausted_epoch: Optional[int] = None
        self.last_use_cycle = 0
        self.allocations = 0
        self.hits = 0
        #: Page whose TLB translation this buffer caches (Section 4.5);
        #: None means "no cached translation".
        self.tlb_page: Optional[int] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def allocate(self, state: StreamState, cycle: int, priority: int = 0) -> None:
        """Claim this buffer for a new stream, discarding old entries."""
        for entry in self.entries:
            entry.clear()
        self.state = state
        self.priority.set(priority)
        self.allocated = True
        self.exhausted_epoch = None
        self.last_use_cycle = cycle
        self.allocations += 1
        self.tlb_page = None

    def deallocate(self) -> None:
        """Release this buffer: drop the stream and clear every entry."""
        for entry in self.entries:
            entry.clear()
        self.state = None
        self.allocated = False
        self.exhausted_epoch = None

    # ------------------------------------------------------------------
    # Entry queries
    # ------------------------------------------------------------------

    def free_entry(self) -> Optional[StreamBufferEntry]:
        """An entry available to hold a new prediction, if any."""
        for entry in self.entries:
            if entry.state == EntryState.FREE:
                return entry
        return None

    def prefetchable_entry(self) -> Optional[StreamBufferEntry]:
        """The oldest PREDICTED entry waiting for the bus, if any."""
        best = None
        for entry in self.entries:
            if entry.state == EntryState.PREDICTED:
                if best is None or entry.predicted_cycle < best.predicted_cycle:
                    best = entry
        return best

    def find_block(self, block: int) -> Optional[StreamBufferEntry]:
        """Tag-match ``block`` against non-free entries."""
        for entry in self.entries:
            if entry.occupied and entry.block == block:
                return entry
        return None

    def head_entry(self) -> Optional[StreamBufferEntry]:
        """The oldest occupied entry (the FIFO head, Jouppi's lookup).

        Age is the prediction order; with in-order consumption the entry
        predicted earliest is the stream's head.
        """
        head = None
        for entry in self.entries:
            if not entry.occupied:
                continue
            if head is None or entry.predicted_cycle < head.predicted_cycle:
                head = entry
        return head

    def wants_prediction(self, epoch: int) -> bool:
        """True when this buffer should compete for the predictor port."""
        if not self.allocated or self.state is None:
            return False
        if self.exhausted_epoch is not None and self.exhausted_epoch == epoch:
            return False
        return self.free_entry() is not None

    def mark_exhausted(self, epoch: int) -> None:
        """The predictor had nothing to offer; retry after more training."""
        self.exhausted_epoch = epoch

    @property
    def occupied_entries(self) -> int:
        """Number of entries currently holding a block (queue depth)."""
        return sum(1 for entry in self.entries if entry.occupied)

    def note_hit(self, cycle: int, bonus: int) -> None:
        """A demand lookup hit this buffer: bump priority, refresh LRU."""
        self.hits += 1
        self.priority.increment(bonus)
        self.last_use_cycle = cycle
        self.exhausted_epoch = None

    def __repr__(self) -> str:
        pc = f"{self.state.pc:#x}" if self.state is not None else "-"
        return (
            f"StreamBuffer(#{self.index}, pc={pc}, "
            f"priority={int(self.priority)}, entries={self.occupied_entries})"
        )
