"""The stream-buffer controller (Section 4.1).

One controller class implements every stream-buffer architecture the
paper evaluates, by composing an address predictor, an allocation filter,
and a scheduler:

==================  =========================  ==============  ============
Architecture        Predictor                  Allocation      Scheduling
==================  =========================  ==============  ============
Jouppi sequential   :class:`SequentialPredictor`  always       round-robin
Farkas PC-stride    ``TwoDeltaStrideTable``    two-miss        round-robin
PSB (this paper)    ``StrideFilteredMarkov``   two-miss /      round-robin /
                                               confidence      priority
==================  =========================  ==============  ============

Per cycle (``tick``): at most one stream buffer uses the shared predictor
port, and at most one prefetch launches — and only when the L1-L2 bus is
free at the start of the cycle.  Predictions are checked against every
buffer so streams never overlap; a duplicate prediction is dropped but
still advances the stream's speculative history, exactly as in the paper.
"""

from __future__ import annotations

from typing import List, Optional

from repro.config import PrefetchConfig, PrefetcherKind, StreamBufferConfig
from repro.memory.hierarchy import NEVER, MemoryHierarchy, PrefetcherPort
from repro.predictors.base import AddressPredictor, StreamState
from repro.predictors.sfm import StrideFilteredMarkovPredictor
from repro.predictors.stride import TwoDeltaStrideTable
from repro.streambuf.allocation import AllocationFilter, make_allocation_filter
from repro.streambuf.buffer import EntryState, StreamBuffer
from repro.streambuf.scheduling import Scheduler, make_scheduler
from repro.streambuf.sharing import SharingPolicy, make_sharing_policy


class SequentialPredictor(AddressPredictor):
    """Jouppi's original streaming: always the next sequential block."""

    def __init__(self, block_size: int) -> None:
        self.block_size = block_size

    def train(self, pc: int, address: int) -> bool:
        """Sequential streaming learns nothing from misses."""
        return False

    def make_stream_state(self, pc: int, address: int) -> StreamState:
        """A stream that walks forward one block at a time."""
        return StreamState(pc, address, stride=self.block_size)

    def next_prediction(self, state: StreamState) -> Optional[int]:
        """Advance the stream to the next sequential block."""
        state.last_address += self.block_size
        return state.last_address


#: Sentinel "no refresh pending" cycle (shared with the skip-ahead horizon).
_NEVER = NEVER


class StreamBufferController(PrefetcherPort):
    """Arbitrates 8 stream buffers over one predictor port and one bus."""

    def __init__(
        self,
        config: StreamBufferConfig,
        predictor: AddressPredictor,
        block_size: int,
    ) -> None:
        self.config = config
        self.predictor = predictor
        self.block_size = block_size
        #: Entry-ownership policy (fixed partition or shared pool); see
        #: :mod:`repro.streambuf.sharing`.  Under a pooled policy the
        #: buffers start empty and grow on demand from ``self.pool``.
        self.sharing: SharingPolicy = make_sharing_policy(config)
        initial_entries = 0 if self.sharing.pooled else config.entries_per_buffer
        self.buffers: List[StreamBuffer] = [
            StreamBuffer(i, initial_entries, config.priority_max)
            for i in range(config.num_buffers)
        ]
        self.sharing.bind(self)
        #: The shared :class:`~repro.streambuf.sharing.EntryPool`, or
        #: ``None`` under fixed partitioning.
        self.pool = self.sharing.pool
        self.allocation_filter: AllocationFilter = make_allocation_filter(config)
        self.scheduler: Scheduler = make_scheduler(config)
        self.hierarchy: Optional[MemoryHierarchy] = None
        self._training_epoch = 0
        self._misses_since_aging = 0
        self._warm_calls = 0
        self._any_allocated = False
        # Steady-state fast path: when a tick finds no work, skip the
        # scan on subsequent ticks until an event (hit, miss, fresh
        # prediction) can have changed the answer.  Purely an
        # optimization; behaviour is identical.
        self._predict_skip = False
        self._prefetch_skip = False
        self._next_refresh = _NEVER
        #: Optional :class:`repro.obs.EventTrace`; when set, allocation,
        #: prefetch-lifecycle, and priority events are emitted through it.
        self.obs_trace = None
        # Statistics.
        self.prefetches_issued = 0
        self.prefetches_used = 0
        self.prefetches_discarded = 0
        self.duplicate_predictions = 0
        self.predictions_made = 0
        self.allocations = 0
        self.allocations_denied = 0
        self.predicted_overtaken = 0

    def attach(self, hierarchy: MemoryHierarchy) -> None:
        """Wire this controller to the memory hierarchy it prefetches into."""
        self.hierarchy = hierarchy
        hierarchy.prefetcher = self

    def _align(self, address: int) -> int:
        return address & ~(self.block_size - 1)

    # ------------------------------------------------------------------
    # Lookup path (PrefetcherPort.probe)
    # ------------------------------------------------------------------

    def probe(self, block_addr: int, cycle: int) -> Optional[int]:
        """Tag match across all buffers.

        Fully associative over every entry by default (Farkas et al.,
        the paper's model); with ``associative_lookup`` disabled only
        each buffer's FIFO head is matchable (Jouppi's original design),
        so any out-of-order touch misses and kills the stream's utility.
        """
        for buffer in self.buffers:
            if not buffer.allocated:
                continue
            if self.config.associative_lookup:
                entry = buffer.find_block(block_addr)
            else:
                entry = buffer.head_entry()
                if entry is not None and entry.block != block_addr:
                    entry = None
            if entry is None:
                continue
            entry.refresh(cycle)
            if entry.state == EntryState.PREDICTED:
                # Tag present but the prefetch never launched; let the
                # demand miss fetch it and drop the stale prediction.
                entry.clear()
                self.sharing.release_entry(buffer, entry)
                self.predicted_overtaken += 1
                self._predict_skip = False
                return None
            ready = entry.ready_cycle
            entry.clear()
            self.sharing.release_entry(buffer, entry)
            buffer.note_hit(cycle, self.config.priority_hit_bonus)
            self.prefetches_used += 1
            self._predict_skip = False  # a freed entry can take a prediction
            trace = self.obs_trace
            if trace is not None:
                if trace.wants("prefetch"):
                    trace.emit(
                        cycle, "prefetch", "hit",
                        buffer=buffer.index, block=block_addr,
                    )
                if trace.wants("priority"):
                    trace.emit(
                        cycle, "priority", "bump",
                        buffer=buffer.index, priority=int(buffer.priority),
                    )
            return ready
        return None

    # ------------------------------------------------------------------
    # Miss path: training, aging, and allocation
    # ------------------------------------------------------------------

    def on_l1_miss(self, pc: int, addr: int, cycle: int, sb_hit: bool) -> None:
        """Write-back update for a demand L1 miss (Section 4.2/4.3)."""
        block = self._align(addr)
        self.predictor.train(pc, block)
        self._training_epoch += 1
        # Training may un-exhaust streams; allocation may add work.
        self._predict_skip = False
        if sb_hit:
            return
        # This miss also missed the stream buffers: it is an allocation
        # request, which both ages priorities and may claim a buffer.
        self._misses_since_aging += 1
        if self._misses_since_aging >= self.config.priority_age_period:
            self._misses_since_aging = 0
            for buffer in self.buffers:
                buffer.priority.decrement(self.config.priority_age_amount)
            trace = self.obs_trace
            if trace is not None and trace.wants("priority"):
                trace.emit(
                    cycle, "priority", "age",
                    amount=self.config.priority_age_amount,
                )
        self._try_allocate(pc, block, cycle)

    def warm_l1_miss(self, pc: int, addr: int) -> None:
        """Fast-forward warming: train the predictor, skip allocation.

        Stream-buffer allocations and priorities are transient relative
        to a sampling gap — they are rebuilt from the (warm) predictor
        tables during each measured window's warm-up — so only the
        predictor's learned state needs to observe fast-forwarded
        misses.
        """
        self.predictor.train(pc, addr & ~(self.block_size - 1))
        self._training_epoch += 1
        self._predict_skip = False

    def warm_confidence(self, pc: int, addr: int) -> None:
        """Timing-aware warming: detune confidence and priority counters.

        Full-rate warming (:meth:`warm_l1_miss`) trains the predictor on
        *every* fast-forwarded miss, but in detailed execution a working
        stream buffer absorbs a large share of those misses, so the
        accuracy-confidence counters and allocation streaks climb far
        more slowly.  Here the address/history tables still observe
        every miss (they must stay exact) while confidence moves on
        alternate misses only, and buffer priorities age on the same
        schedule the detailed miss stream would drive — so the next
        measured window opens from predictor state resembling detailed
        steady state instead of a fully saturated one.
        """
        self._warm_calls += 1
        full = (self._warm_calls & 1) == 0
        self.predictor.warm(pc, addr & ~(self.block_size - 1), full)
        self._training_epoch += 1
        self._predict_skip = False
        self._misses_since_aging += 1
        if self._misses_since_aging >= self.config.priority_age_period:
            self._misses_since_aging = 0
            for buffer in self.buffers:
                buffer.priority.decrement(self.config.priority_age_amount)

    def _try_allocate(self, pc: int, block: int, cycle: int) -> None:
        # A load that already owns a stream must not thrash it: while its
        # buffer is still *working* (predictions pending or prefetches in
        # flight) the allocation request is denied — the stream simply
        # has not caught up yet.  Only an idle (stale or fully consumed)
        # stream may be restarted, and then admission is still filtered.
        own = None
        for buffer in self.buffers:
            if buffer.allocated and buffer.state is not None and buffer.state.pc == pc:
                own = buffer
                break
        if own is not None:
            busy = any(
                entry.state in (EntryState.PREDICTED, EntryState.IN_FLIGHT)
                for entry in own.entries
            )
            if busy or not self.allocation_filter.admits(pc, self.predictor):
                self.allocations_denied += 1
                self._emit_alloc_denied(
                    cycle, pc, "own-busy" if busy else "filter"
                )
                return
            victim = own
        else:
            victim = self.allocation_filter.choose_victim(
                pc, self.predictor, self.buffers
            )
            if victim is None:
                self.allocations_denied += 1
                self._emit_alloc_denied(cycle, pc, "no-victim")
                return
        self._discard_unused(victim)
        # Return the victim's pooled entries *before* the new stream
        # claims the buffer: the freed credit must be available to the
        # same cycle's allocation and prediction passes, not the next
        # one.  (Under fixed sizing this is a no-op either way.)
        self.sharing.release_stream(victim)
        state = self.predictor.make_stream_state(pc, block)
        victim.allocate(state, cycle, priority=state.confidence)
        self.allocations += 1
        self._any_allocated = True
        trace = self.obs_trace
        if trace is not None and trace.wants("alloc"):
            trace.emit(
                cycle, "alloc", "allocate",
                buffer=victim.index, pc=pc, block=block,
                priority=int(victim.priority),
            )

    def _emit_alloc_denied(self, cycle: int, pc: int, reason: str) -> None:
        """Trace one denied allocation request (reason: why it lost)."""
        trace = self.obs_trace
        if trace is not None and trace.wants("alloc"):
            trace.emit(cycle, "alloc", "deny", pc=pc, reason=reason)

    def _discard_unused(self, buffer: StreamBuffer) -> None:
        """Count prefetched-but-never-used entries lost to reallocation."""
        for entry in buffer.entries:
            if entry.state in (EntryState.IN_FLIGHT, EntryState.READY):
                self.prefetches_discarded += 1

    # ------------------------------------------------------------------
    # Per-cycle operation: one prediction, one prefetch
    # ------------------------------------------------------------------

    def tick(self, cycle: int) -> None:
        """One controller cycle: refresh fills, predict once, prefetch once."""
        if not self._any_allocated:
            return
        if cycle >= self._next_refresh:
            trace = self.obs_trace
            emit_fill = trace is not None and trace.wants("prefetch")
            next_refresh = _NEVER
            for buffer in self.buffers:
                for entry in buffer.entries:
                    was_in_flight = entry.state == EntryState.IN_FLIGHT
                    entry.refresh(cycle)
                    if entry.state == EntryState.IN_FLIGHT:
                        if entry.ready_cycle < next_refresh:
                            next_refresh = entry.ready_cycle
                    elif emit_fill and was_in_flight:
                        trace.emit(
                            cycle, "prefetch", "fill",
                            buffer=buffer.index, block=entry.block,
                        )
            self._next_refresh = next_refresh
        if not self._predict_skip:
            self._predict_one(cycle)
        if not self._prefetch_skip:
            self._prefetch_one(cycle)

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` at which :meth:`tick` could act.

        Mirrors :meth:`tick`'s own gating exactly: a pending prediction
        means next cycle is interesting; pending prefetches wake at the
        next free L1-L2 bus slot; in-flight fills wake the refresh scan
        at ``_next_refresh``.  Pure query — the event-driven core loop
        calls this every quiescent cycle.
        """
        if not self._any_allocated:
            return _NEVER
        if not self._predict_skip:
            return cycle
        horizon = self._next_refresh
        if not self._prefetch_skip and self.hierarchy is not None:
            slot = self.hierarchy.next_prefetch_slot(cycle)
            if slot < horizon:
                horizon = slot
        return horizon

    def _predict_one(self, cycle: int) -> None:
        epoch = self._training_epoch
        sharing = self.sharing
        buffer = self.scheduler.pick_for_prediction(
            self.buffers, lambda b: sharing.wants_prediction(b, epoch)
        )
        if buffer is None or buffer.state is None:
            # Nothing can take a prediction; skip until an entry frees,
            # a training event lands, or a (re)allocation happens.
            self._predict_skip = True
            return
        predicted = self.predictor.next_prediction(buffer.state)
        if predicted is None:
            buffer.mark_exhausted(epoch)
            return
        self.predictions_made += 1
        block = self._align(predicted)
        if self.config.check_overlap:
            for other in self.buffers:
                if other.allocated and other.find_block(block) is not None:
                    # Overlapping streams are forbidden: drop the
                    # prediction (history already advanced — Section 4.1).
                    self.duplicate_predictions += 1
                    return
        entry = self.sharing.take_entry(buffer, cycle)
        if entry is not None:
            entry.hold_prediction(block, cycle)
            self._prefetch_skip = False  # fresh work for the bus

    def _prefetch_one(self, cycle: int) -> None:
        if self.hierarchy is None or not self.hierarchy.can_prefetch(cycle):
            return
        buffer = self.scheduler.pick_for_prefetch(
            self.buffers, lambda b: b.allocated and b.prefetchable_entry() is not None
        )
        if buffer is None:
            # No predicted entries anywhere; skip until one is held.
            self._prefetch_skip = True
            return
        entry = buffer.prefetchable_entry()
        if entry is None:
            return
        skip_tlb = False
        if self.config.cache_tlb_translations:
            # Section 4.5: the buffer caches one page translation and
            # only consults the TLB when the stream leaves that page.
            page = self.hierarchy.tlb.page_of(entry.block)
            skip_tlb = buffer.tlb_page == page
            buffer.tlb_page = page
        ready = self.hierarchy.issue_prefetch(entry.block, cycle, skip_tlb=skip_tlb)
        trace = self.obs_trace
        if ready is None:
            # Already resident (or in flight) in the L1: drop silently.
            if trace is not None and trace.wants("prefetch"):
                trace.emit(
                    cycle, "prefetch", "drop",
                    buffer=buffer.index, block=entry.block,
                )
            entry.clear()
            self.sharing.release_entry(buffer, entry)
            self._predict_skip = False
            return
        self.prefetches_issued += 1
        if trace is not None and trace.wants("prefetch"):
            trace.emit(
                cycle, "prefetch", "issue",
                buffer=buffer.index, block=entry.block, ready=ready,
            )
        entry.mark_in_flight(ready)
        if ready < self._next_refresh:
            self._next_refresh = ready

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def accuracy(self) -> float:
        """Prefetch accuracy: prefetches used / prefetches made (Fig. 6)."""
        if self.prefetches_issued == 0:
            return 0.0
        return min(1.0, self.prefetches_used / self.prefetches_issued)

    def reset_stats(self) -> None:
        """Zero counters (warm-up boundary); learned state is preserved."""
        self.prefetches_issued = 0
        self.prefetches_used = 0
        self.prefetches_discarded = 0
        self.duplicate_predictions = 0
        self.predictions_made = 0
        self.allocations = 0
        self.allocations_denied = 0
        self.predicted_overtaken = 0
        if self.pool is not None:
            self.pool.reset_stats()


def build_prefetcher(config: PrefetchConfig, block_size: int):
    """Construct the prefetcher architecture selected by ``config``.

    Stream-buffer kinds return a :class:`StreamBufferController`; the
    demand-based prior-art kinds (next-line, Joseph-Grunwald Markov)
    return their own :class:`~repro.memory.hierarchy.PrefetcherPort`
    implementations.  All expose ``attach``, ``reset_stats``,
    ``prefetches_issued``/``prefetches_used``, and ``accuracy``.
    """
    from repro.demandpf.markov_prefetcher import DemandMarkovPrefetcher
    from repro.demandpf.nextline import NextLinePrefetcher
    from repro.predictors.mindelta import MinimumDeltaPredictor

    if config.kind == PrefetcherKind.NONE:
        return None
    if config.kind == PrefetcherKind.NEXT_LINE:
        return NextLinePrefetcher(block_size)
    if config.kind == PrefetcherKind.DEMAND_MARKOV:
        return DemandMarkovPrefetcher(
            block_size, table_entries=config.markov.entries
        )
    if config.kind == PrefetcherKind.SEQUENTIAL:
        predictor: AddressPredictor = SequentialPredictor(block_size)
    elif config.kind == PrefetcherKind.STRIDE_PC:
        predictor = TwoDeltaStrideTable(config.stride)
    elif config.kind == PrefetcherKind.MIN_DELTA:
        predictor = MinimumDeltaPredictor(block_size)
    elif config.kind == PrefetcherKind.PREDICTOR_DIRECTED:
        predictor = StrideFilteredMarkovPredictor(config.stride, config.markov)
    else:
        raise ValueError(f"unknown prefetcher kind: {config.kind}")
    return StreamBufferController(config.stream_buffers, predictor, block_size)
