"""Data TLB used on the prefetch path (Section 4.5).

The paper stores *virtual* addresses in the predictor and translates to
physical addresses at prefetch time — effectively TLB prefetching.  The
benchmarks have very few TLB misses, and the paper saw no performance
effect; we model a fully associative LRU TLB with a fixed miss penalty so
that the behaviour (and its statistics) exist and can be tested.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Tuple

from repro.config import TlbConfig


class DataTlb:
    """Fully associative, LRU-replaced page-translation buffer."""

    def __init__(self, config: TlbConfig) -> None:
        self.config = config
        self._entries: OrderedDict = OrderedDict()  # virtual page -> True
        self.accesses = 0
        self.misses = 0

    def page_of(self, address: int) -> int:
        return address // self.config.page_size

    def translate(self, address: int) -> Tuple[int, int]:
        """Translate ``address``; return ``(physical_address, extra_latency)``.

        The mapping is the identity (timing-only simulation), so the
        interesting output is the latency: zero on a TLB hit, the miss
        penalty on a walk.  Missing pages are filled with LRU replacement.
        """
        self.accesses += 1
        page = self.page_of(address)
        if page in self._entries:
            self._entries.move_to_end(page)
            return address, 0
        self.misses += 1
        if len(self._entries) >= self.config.entries:
            self._entries.popitem(last=False)
        self._entries[page] = True
        return address, self.config.miss_latency

    def same_page(self, addr_a: int, addr_b: int) -> bool:
        """True when two addresses fall on the same page.

        Stream buffers can cache a translation and only re-walk when the
        predicted prefetch address crosses a page boundary (Section 4.5).
        """
        return self.page_of(addr_a) == self.page_of(addr_b)

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        self.accesses = 0
        self.misses = 0
