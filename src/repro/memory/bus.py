"""Occupancy-modelled buses.

The paper rewrote SimpleScalar's memory hierarchy "to better model bus
occupancy, bandwidth, and pipelining" and gates prefetches on the L1-L2
bus being free at the start of a cycle.  :class:`Bus` captures that with
an *interval reservation* model: a transaction occupies the bus only for
the cycles its bytes are actually moving, so the window between a miss
request going down and its refill coming back stays free — exactly the
slack stream-buffer prefetches live off.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.config import BusConfig


class Bus:
    """A single-transaction bus with a bytes-per-cycle bandwidth limit.

    Reservations are half-open ``[start, end)`` intervals, kept sorted
    and non-overlapping.  ``acquire`` books the earliest gap that fits.
    """

    def __init__(self, config: BusConfig) -> None:
        self.config = config
        self._reservations: List[Tuple[int, int]] = []
        # Size -> duration cache: transfers come in two sizes (request
        # packet, refill block) but the duration math runs per transfer.
        self._duration_of: dict = {}
        self.busy_cycles = 0
        self.transactions = 0

    def prune_before(self, cycle: int) -> None:
        """Forget reservations that ended at or before ``cycle``.

        Only safe with the *simulation clock* (monotone): an ``acquire``
        may book far in the future and must not erase reservations that
        earlier-cycle callers still contend with.
        """
        reservations = self._reservations
        if not reservations or reservations[0][1] > cycle:
            return
        drop = 0
        for start, end in reservations:
            if end <= cycle:
                drop += 1
            else:
                break
        if drop:
            del reservations[:drop]

    def is_free_at(self, cycle: int) -> bool:
        """True when no transaction occupies the bus at ``cycle``.

        A pure query: unlike :meth:`prune_before` it never mutates the
        reservation list, so cycle-skipping callers (the event-driven
        core loop probes future cycles) leave the bus state untouched.
        """
        return self.next_free_cycle(cycle) == cycle

    def next_free_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` with no transaction on the wires.

        This is the accessor the event-driven core loop uses to compute
        its skip-ahead horizon: when prefetches are pending but the bus
        is occupied, nothing can happen before this cycle.  Pure query;
        no pruning.
        """
        free = cycle
        for start, end in self._reservations:
            if start > free:
                break
            if end > free:
                free = end
        return free

    def reservations(self) -> List[Tuple[int, int]]:
        """A copy of the current ``[start, end)`` reservation intervals.

        Public introspection for the integrity checker and tests, so
        nothing outside this class walks ``_reservations`` directly.
        """
        return list(self._reservations)

    def transfer_cycles(self, num_bytes: int) -> int:
        """Cycles required to move ``num_bytes`` at this bus's bandwidth."""
        duration = self._duration_of.get(num_bytes)
        if duration is None:
            duration = self.config.transfer_cycles(num_bytes)
            self._duration_of[num_bytes] = duration
        return duration

    def acquire(self, earliest_cycle: int, num_bytes: int) -> int:
        """Reserve the earliest gap fitting a ``num_bytes`` transfer.

        Returns the cycle the transfer *starts*; it completes
        ``transfer_cycles(num_bytes)`` later.
        """
        duration = self.transfer_cycles(num_bytes)
        reservations = self._reservations
        start = earliest_cycle
        position = 0
        for index, (busy_start, busy_end) in enumerate(reservations):
            if start + duration <= busy_start:
                position = index
                break
            start = max(start, busy_end)
            position = index + 1
        reservations.insert(position, (start, start + duration))
        self.busy_cycles += duration
        self.transactions += 1
        return start

    def utilization(self, total_cycles: int) -> float:
        """Fraction of ``total_cycles`` the bus spent busy."""
        if total_cycles <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / total_cycles)

    def stats(self) -> dict:
        """Cumulative activity counters (for probes and reports)."""
        return {
            "busy_cycles": self.busy_cycles,
            "transactions": self.transactions,
        }

    def reset_stats(self) -> None:
        """Zero the activity counters (fired at the warm-up boundary)."""
        self.busy_cycles = 0
        self.transactions = 0

    def __repr__(self) -> str:
        return (
            f"Bus({self.config.name}: pending={len(self._reservations)}, "
            f"busy={self.busy_cycles})"
        )
