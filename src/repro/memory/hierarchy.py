"""The full memory hierarchy: L1D + stream buffers + unified L2 + DRAM.

Timing model (Section 5.1 of the paper):

- L1 data cache hit: ``hit_latency`` cycles (1 in the baseline).
- L1 miss: one request at a time crosses the L1-L2 bus (8 bytes/cycle);
  the L2 is pipelined ``l2_pipeline_depth`` accesses deep with a 12-cycle
  latency; the refill block then crosses the L1-L2 bus back.
- L2 miss: the request continues over the L2-memory bus (4 bytes/cycle)
  to a 120-cycle main memory.
- Stream buffers are probed in parallel with the L1 lookup, at the same
  latency.  A stream-buffer hit moves the block into the L1; a tag hit on
  a still-in-flight prefetch hands the block to an L1 MSHR.

Miss accounting follows Section 6: any access to a block that is not
*resident* in the L1 counts as a miss — including merges into in-flight
MSHR entries and stream-buffer hits.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

from repro.config import SimConfig
from repro.memory.bus import Bus
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import MainMemory
from repro.memory.mshr import MshrFile
from repro.memory.tlb import DataTlb
from repro.stats import Accumulator

#: Bytes of a request (address) packet on the L1-L2 bus.
REQUEST_BYTES = 8

#: Sentinel "no event pending" cycle for skip-ahead horizons; far enough
#: out that no simulation ever reaches it.
NEVER = 1 << 62


class AccessResult:
    """Outcome of one demand access to the hierarchy."""

    __slots__ = ("complete_cycle", "served_by", "l1_miss", "latency")

    def __init__(
        self, complete_cycle: int, served_by: str, l1_miss: bool, latency: int
    ) -> None:
        self.complete_cycle = complete_cycle
        self.served_by = served_by
        self.l1_miss = l1_miss
        self.latency = latency

    def __repr__(self) -> str:
        return (
            f"AccessResult(done={self.complete_cycle}, via={self.served_by}, "
            f"miss={self.l1_miss}, lat={self.latency})"
        )


class PrefetcherPort:
    """Interface the hierarchy expects from a stream-buffer controller.

    A controller may override any subset; the defaults describe a machine
    with no prefetcher.
    """

    def probe(self, block_addr: int, cycle: int) -> Optional[int]:
        """Tag-match ``block_addr`` across all stream buffers.

        Returns the cycle the block's data is (or will be) available, and
        frees the matching entry; or None on a miss.
        """
        return None

    def on_l1_miss(self, pc: int, addr: int, cycle: int, sb_hit: bool) -> None:
        """Observe a demand L1 miss (allocation + predictor training)."""

    def tick(self, cycle: int) -> None:
        """Advance one cycle: make one prediction, maybe one prefetch."""

    def next_event_cycle(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` at which :meth:`tick` could do
        anything.

        The event-driven core loop folds this into its skip-ahead
        horizon; :data:`NEVER` means the prefetcher is idle until an
        external event (miss, probe) wakes it.  Implementations must be
        pure queries, and must be *conservative*: returning ``cycle``
        simply disables skipping for a cycle, while returning too large
        a value would silently change simulation results.
        """
        return NEVER

    def quiesce(self) -> None:
        """Trim unbounded transient state after a fast-forward stretch.

        The sampling driver (:mod:`repro.sampling`) trains prefetchers on
        every fast-forwarded L1 miss without ever running :meth:`tick`,
        so implementations that queue work between the two (the demand
        prefetchers' pending lists) must bound that queue here.  Learned
        predictor state must be preserved.  The default is a no-op.
        """

    def warm_l1_miss(self, pc: int, addr: int) -> None:
        """Functionally warm predictor state for one fast-forwarded miss.

        Called by the sampling fast-forward engine instead of
        :meth:`on_l1_miss`: implementations should update only the
        *persistent* learned state (predictor tables, confidence
        counters) and may skip transient per-miss work — allocation,
        priority aging, prefetch scheduling — which the next measured
        window's warm-up rebuilds anyway.  The default delegates to
        :meth:`on_l1_miss` at cycle 0 so simple prefetchers warm with
        full fidelity.
        """
        self.on_l1_miss(pc, addr, 0, False)

    def warm_confidence(self, pc: int, addr: int) -> None:
        """Timing-aware warming for one fast-forwarded miss.

        Called instead of :meth:`warm_l1_miss` when
        :attr:`~repro.config.SamplingConfig.warm_confidence` is set.
        Full-rate functional warming overshoots detailed steady state:
        in detailed execution a warm prefetcher *removes* misses, so the
        predictor trains — and its accuracy-confidence counters climb —
        more slowly than a fast-forward that replays every miss.
        Implementations should keep the address/history tables exact
        (they mirror the access stream either way) but move confidence
        and priority counters at a detuned rate.  The default delegates
        to :meth:`warm_l1_miss`: prefetchers without separate confidence
        state have nothing to detune.
        """
        self.warm_l1_miss(pc, addr)


class L2Pipeline:
    """The L2 accepts overlapping accesses, ``depth`` at a time."""

    def __init__(self, depth: int, latency: int) -> None:
        if depth < 1:
            raise ValueError("L2 pipeline depth must be at least 1")
        self.latency = latency
        self._slot_free_at: List[int] = [0] * depth

    def access(self, arrival_cycle: int) -> int:
        """Schedule an access; return the cycle its result is available."""
        slots = self._slot_free_at
        best = 0
        best_free = slots[0]
        for index in range(1, len(slots)):
            free = slots[index]
            if free < best_free:
                best_free = free
                best = index
        start = arrival_cycle if arrival_cycle > best_free else best_free
        done = start + self.latency
        slots[best] = done
        return done


class MemoryHierarchy:
    """Coordinates caches, buses, MSHRs, DRAM, TLB, and the prefetcher."""

    def __init__(self, config: SimConfig) -> None:
        self.config = config
        self.l1 = SetAssociativeCache(config.l1_data)
        self.l2 = SetAssociativeCache(config.l2_unified)
        self.l1_l2_bus = Bus(config.l1_l2_bus)
        self.l2_mem_bus = Bus(config.l2_mem_bus)
        self.memory = MainMemory(config.memory, self.l2_mem_bus)
        self.tlb = DataTlb(config.tlb)
        self.l1_mshr = MshrFile(config.l1_data.mshr_entries)
        self.l2_mshr = MshrFile(config.l2_unified.mshr_entries)
        self.l2_pipeline = L2Pipeline(
            config.l2_pipeline_depth, config.l2_unified.hit_latency
        )
        self.prefetcher: PrefetcherPort = PrefetcherPort()
        #: Optional :class:`repro.integrity.InvariantChecker`; when set,
        #: its per-miss / per-prefetch hooks fire from the access paths.
        self.integrity = None
        #: Optional :class:`repro.obs.EventTrace`; when set, demand
        #: misses emit structured events (category ``demand``).
        self.obs_trace = None
        #: Optional :class:`repro.obs.HistogramMetric` observing every
        #: demand miss latency; set by :func:`repro.obs.wire_simulator`.
        self.obs_latency_hist = None
        # Pending fills: (ready_cycle, block, dirty) min-heaps.
        self._l1_fills: List[Tuple[int, int, bool]] = []
        self._l2_fills: List[Tuple[int, int, bool]] = []
        # Earliest cycle at which :meth:`drain` has any work: the min
        # ready cycle over both fill heaps (every MSHR entry is paired
        # with a fill at the same ready cycle, so fills cover MSHR
        # retirement too).  Every scheduled fill lowers it; drain
        # recomputes it.  0 so the first drain call does a full pass.
        self._drain_due = 0
        # Statistics.
        self.demand_accesses = 0
        self.demand_misses = 0
        self.sb_hits = 0
        self.sb_pending_hits = 0
        self.load_latency = Accumulator("load-latency")
        self.prefetches_issued = 0
        self.prefetches_redundant = 0
        # Where true demand misses were ultimately served from (the
        # report's hit-rate breakdown needs L2 vs memory separated).
        self.demand_l2_fetches = 0
        self.demand_mem_fetches = 0

    # ------------------------------------------------------------------
    # Internal fill bookkeeping
    # ------------------------------------------------------------------

    def drain(self, cycle: int) -> None:
        """Complete any fills whose data has arrived by ``cycle``."""
        if cycle < self._drain_due:
            return
        # ``cycle`` follows the core's clock (monotone), so old bus
        # reservations can safely be forgotten here.  (Pruning rides
        # the watermark: deferring it never changes bus timing, only
        # how long stale reservations linger in the scan lists.)
        self.l1_l2_bus.prune_before(cycle)
        self.l2_mem_bus.prune_before(cycle)
        l2_fills = self._l2_fills
        while l2_fills and l2_fills[0][0] <= cycle:
            __, block, dirty = heapq.heappop(l2_fills)
            self.l2.insert(block, dirty=dirty)
        l1_fills = self._l1_fills
        while l1_fills and l1_fills[0][0] <= cycle:
            ready, block, dirty = heapq.heappop(l1_fills)
            victim = self.l1.insert(block, dirty=dirty)
            if victim is not None and victim[1]:
                self._write_back_l1_victim(victim[0], ready)
        self.l1_mshr.retire_ready(cycle)
        self.l2_mshr.retire_ready(cycle)
        l1_head = l1_fills[0][0] if l1_fills else NEVER
        l2_head = l2_fills[0][0] if l2_fills else NEVER
        self._drain_due = l1_head if l1_head < l2_head else l2_head

    def _write_back_l1_victim(self, block: int, cycle: int) -> None:
        """Send a dirty L1 block down to the L2 (occupies the L1-L2 bus)."""
        self.l1_l2_bus.acquire(cycle, self.l1.block_size)
        if not self.l2.mark_dirty(block):
            victim = self.l2.insert(block, dirty=True)
            if victim is not None and victim[1]:
                # Dirty L2 victim goes to memory over the L2-memory bus.
                self.l2_mem_bus.acquire(cycle, self.l2.block_size)

    # ------------------------------------------------------------------
    # L2-and-below request path (shared by demand misses and prefetches)
    # ------------------------------------------------------------------

    def _fetch_from_l2(self, address: int, request_cycle: int) -> Tuple[int, str]:
        """Request an L1 block from the L2 (or memory beyond it).

        ``request_cycle`` is when the request wins the L1-L2 bus.  Returns
        ``(arrival_cycle, served_by)`` where ``arrival_cycle`` is when the
        block's data has fully arrived back at the L1 side and
        ``served_by`` is ``"l2"`` or ``"mem"``.
        """
        l2_block = self.l2.align(address)
        arrival = self.l1_l2_bus.acquire(request_cycle, REQUEST_BYTES) + 1
        l2_hit = self.l2.access(address)
        l2_done = self.l2_pipeline.access(arrival)
        served_by = "l2"
        if not l2_hit:
            served_by = "mem"
            inflight = self.l2_mshr.lookup(l2_block)
            if inflight is not None:
                l2_done = max(l2_done, self.l2_mshr.merge(l2_block))
            else:
                mem_done = self.memory.access(l2_done, self.l2.block_size)
                if not self.l2_mshr.is_full():
                    self.l2_mshr.allocate(l2_block, mem_done)
                else:
                    self.l2_mshr.note_full_stall()
                heapq.heappush(self._l2_fills, (mem_done, l2_block, False))
                if mem_done < self._drain_due:
                    self._drain_due = mem_done
                l2_done = mem_done
        # The refill block crosses the L1-L2 bus back to the L1 side.
        transfer_start = self.l1_l2_bus.acquire(l2_done, self.l1.block_size)
        arrival_cycle = transfer_start + self.l1_l2_bus.transfer_cycles(
            self.l1.block_size
        )
        return arrival_cycle, served_by

    # ------------------------------------------------------------------
    # Demand path
    # ------------------------------------------------------------------

    def access(
        self, pc: int, address: int, cycle: int, is_store: bool = False
    ) -> AccessResult:
        """Perform a demand load/store lookup starting at ``cycle``."""
        self.drain(cycle)
        self.demand_accesses += 1
        l1 = self.l1
        block = address & ~(l1.block_size - 1)
        hit_latency = l1.config.hit_latency
        hit_done = cycle + hit_latency

        if l1.access(address, is_store=is_store):
            return AccessResult(hit_done, "l1", False, hit_latency)

        # Not resident: a miss under the paper's accounting, whatever
        # happens next.
        self.demand_misses += 1

        inflight = self.l1_mshr.lookup(block)
        if inflight is not None:
            # Merged (secondary) misses do not train the predictor: the
            # paper predicts the *miss stream*, i.e. block fetches, and a
            # merge fetches nothing new.
            done = max(self.l1_mshr.merge(block), hit_done)
            return self._miss_result(
                AccessResult(done, "inflight", True, done - cycle), cycle
            )

        sb_ready = self.prefetcher.probe(block, cycle)
        if sb_ready is not None:
            if sb_ready <= cycle:
                # Data waiting in the stream buffer: move block into L1.
                self.sb_hits += 1
                heapq.heappush(self._l1_fills, (hit_done, block, is_store))
                if hit_done < self._drain_due:
                    self._drain_due = hit_done
                self._finish_miss(pc, address, cycle, is_store, sb_hit=True)
                return self._miss_result(
                    AccessResult(hit_done, "sb", True, hit_done - cycle), cycle
                )
            # Tag hit on an in-flight prefetch: hand off to an L1 MSHR.
            self.sb_pending_hits += 1
            done = max(sb_ready, hit_done)
            if not self.l1_mshr.is_full():
                self.l1_mshr.allocate(block, done)
            heapq.heappush(self._l1_fills, (done, block, is_store))
            if done < self._drain_due:
                self._drain_due = done
            self._finish_miss(pc, address, cycle, is_store, sb_hit=True)
            return self._miss_result(
                AccessResult(done, "sb-pending", True, done - cycle), cycle
            )

        # True miss: go to the L2 (and perhaps memory).
        request_cycle = cycle + self.l1.config.hit_latency
        if self.l1_mshr.is_full():
            self.l1_mshr.note_full_stall()
            request_cycle = max(request_cycle, self.l1_mshr.earliest_ready())
            self.l1_mshr.retire_ready(request_cycle)
        done, served = self._fetch_from_l2(address, request_cycle)
        if served == "l2":
            self.demand_l2_fetches += 1
        else:
            self.demand_mem_fetches += 1
        self.l1_mshr.allocate(block, done)
        heapq.heappush(self._l1_fills, (done, block, is_store))
        if done < self._drain_due:
            self._drain_due = done
        self._finish_miss(pc, address, cycle, is_store, sb_hit=False)
        return self._miss_result(
            AccessResult(done, served, True, done - cycle), cycle
        )

    def _miss_result(self, result: AccessResult, cycle: int) -> AccessResult:
        """Fire the integrity and observability hooks on the way out."""
        if self.integrity is not None:
            self.integrity.on_miss(cycle)
        if self.obs_latency_hist is not None:
            self.obs_latency_hist.observe(result.latency)
        trace = self.obs_trace
        if trace is not None and trace.wants("demand"):
            trace.emit(
                cycle, "demand", "miss",
                served_by=result.served_by, latency=result.latency,
            )
        return result

    def _finish_miss(
        self, pc: int, address: int, cycle: int, is_store: bool, sb_hit: bool
    ) -> None:
        """Notify the prefetcher of a demand L1 load miss.

        Training happens in the write-back stage per Section 4.2; only
        *loads* index the prediction tables, so store misses pass by.
        """
        if not is_store:
            self.prefetcher.on_l1_miss(pc, address, cycle, sb_hit)

    # ------------------------------------------------------------------
    # Prefetch path
    # ------------------------------------------------------------------

    def can_prefetch(self, cycle: int) -> bool:
        """Prefetches only launch when the L1-L2 bus is free at the start
        of a cycle (Section 4.1)."""
        return self.l1_l2_bus.next_free_cycle(cycle) == cycle

    def next_prefetch_slot(self, cycle: int) -> int:
        """Earliest cycle >= ``cycle`` a prefetch could win the L1-L2 bus.

        The single "next free cycle" accessor shared by
        :meth:`can_prefetch` and the prefetchers' ``next_event_cycle``
        horizon hooks, so no caller scans bus reservation lists itself.
        Pure query: probing future cycles must not perturb bus state.
        """
        return self.l1_l2_bus.next_free_cycle(cycle)

    def issue_prefetch(
        self, address: int, cycle: int, skip_tlb: bool = False
    ) -> Optional[int]:
        """Prefetch the L1 block containing ``address`` into a stream buffer.

        Returns the cycle the data will be ready in the stream-buffer
        entry.  Stream buffers do not probe the L1 before prefetching
        (they check only each other, Section 4.1), so a prefetch of an
        already-resident block goes to the L2 anyway — it is simply a
        wasted prefetch, which the accuracy statistics capture.

        ``skip_tlb`` implements the Section 4.5 optimization: a stream
        buffer holding a cached translation for this page skips the TLB
        lookup entirely.
        """
        block = self.l1.align(address)
        if self.l1.probe(block) or self.l1_mshr.lookup(block) is not None:
            self.prefetches_redundant += 1
        if skip_tlb:
            physical, tlb_penalty = address, 0
        else:
            physical, tlb_penalty = self.tlb.translate(address)
        self.prefetches_issued += 1
        done, __ = self._fetch_from_l2(physical, cycle + tlb_penalty)
        if self.integrity is not None:
            self.integrity.on_prefetch(cycle)
        return done

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    @property
    def demand_miss_rate(self) -> float:
        if self.demand_accesses == 0:
            return 0.0
        return self.demand_misses / self.demand_accesses

    def perf_counters(self) -> dict:
        """Event counts for the perf subsystem (one flat dict)."""
        return {
            "hierarchy.demand_accesses": float(self.demand_accesses),
            "hierarchy.demand_misses": float(self.demand_misses),
            "hierarchy.sb_hits": float(self.sb_hits),
            "hierarchy.sb_pending_hits": float(self.sb_pending_hits),
            "hierarchy.prefetches_issued": float(self.prefetches_issued),
            "hierarchy.l1_l2_bus_transactions": float(
                self.l1_l2_bus.transactions
            ),
            "hierarchy.l2_mem_bus_transactions": float(
                self.l2_mem_bus.transactions
            ),
            "hierarchy.demand_l2_fetches": float(self.demand_l2_fetches),
            "hierarchy.demand_mem_fetches": float(self.demand_mem_fetches),
            "hierarchy.tlb_misses": float(self.tlb.misses),
        }

    def reset_stats(self) -> None:
        """Zero every statistic (fired at the warm-up boundary)."""
        self.demand_accesses = 0
        self.demand_misses = 0
        self.sb_hits = 0
        self.sb_pending_hits = 0
        self.prefetches_issued = 0
        self.prefetches_redundant = 0
        self.demand_l2_fetches = 0
        self.demand_mem_fetches = 0
        if self.obs_latency_hist is not None:
            self.obs_latency_hist.reset()
        self.load_latency.reset()
        self.l1.reset_stats()
        self.l2.reset_stats()
        self.l1_l2_bus.reset_stats()
        self.l2_mem_bus.reset_stats()
        self.memory.reset_stats()
        self.tlb.reset_stats()
