"""Miss Status Holding Registers.

MSHRs track cache blocks that have been requested but have not yet
arrived.  A second miss to an in-flight block merges into the existing
entry instead of issuing a duplicate request; per the paper's accounting
(Section 6) such merged accesses still count as cache misses.
"""

from __future__ import annotations

from typing import Dict, Optional

#: "Nothing in flight" sentinel for the earliest-ready fast path.
_NEVER = 1 << 62


class MshrFile:
    """A finite file of outstanding block fills, keyed by block address."""

    def __init__(self, num_entries: int) -> None:
        if num_entries < 1:
            raise ValueError("an MSHR file needs at least one entry")
        self.num_entries = num_entries
        self._inflight: Dict[int, int] = {}  # block address -> ready cycle
        # Cached min of ``_inflight.values()`` so the per-access
        # ``retire_ready`` sweep can bail out without scanning.
        self._earliest = _NEVER
        self.allocations = 0
        self.releases = 0
        self.merges = 0
        self.full_stalls = 0

    def __len__(self) -> int:
        return len(self._inflight)

    def lookup(self, block_addr: int) -> Optional[int]:
        """Return the ready cycle of an in-flight block, or None."""
        return self._inflight.get(block_addr)

    def is_full(self) -> bool:
        """True when every register holds an outstanding fill."""
        return len(self._inflight) >= self.num_entries

    def earliest_ready(self) -> int:
        """Cycle at which the soonest in-flight fill completes."""
        if not self._inflight:
            raise ValueError("no in-flight entries")
        return min(self._inflight.values())

    def allocate(self, block_addr: int, ready_cycle: int) -> None:
        """Record a new outstanding fill for ``block_addr``."""
        if block_addr in self._inflight:
            raise ValueError(f"block {block_addr:#x} already in flight")
        if self.is_full():
            raise ValueError("MSHR file is full")
        self._inflight[block_addr] = ready_cycle
        if ready_cycle < self._earliest:
            self._earliest = ready_cycle
        self.allocations += 1

    def merge(self, block_addr: int) -> int:
        """Merge a secondary miss into an existing entry; return ready cycle."""
        self.merges += 1
        return self._inflight[block_addr]

    def retire_ready(self, cycle: int) -> list:
        """Remove and return block addresses whose fills completed by ``cycle``."""
        if cycle < self._earliest:
            return []
        inflight = self._inflight
        done = [blk for blk, ready in inflight.items() if ready <= cycle]
        for blk in done:
            del inflight[blk]
        self.releases += len(done)
        self._earliest = min(inflight.values()) if inflight else _NEVER
        return done

    def note_full_stall(self) -> None:
        """Count one access that found the file full and had to wait."""
        self.full_stalls += 1

    def stats(self) -> dict:
        """Cumulative activity counters (for probes and reports)."""
        return {
            "allocations": self.allocations,
            "releases": self.releases,
            "merges": self.merges,
            "full_stalls": self.full_stalls,
            "occupancy": len(self._inflight),
        }

    def in_flight_blocks(self) -> Dict[int, int]:
        """A copy of the in-flight map (for tests and introspection)."""
        return dict(self._inflight)
