"""Memory-hierarchy substrate: caches, MSHRs, buses, DRAM, and TLB.

The hierarchy matches Section 5.1 of the paper: an L1 data cache backed by
a unified, pipelined L2 and main memory, with occupancy-modelled buses
between each pair of levels.  Stream-buffer prefetchers plug into
:class:`~repro.memory.hierarchy.MemoryHierarchy` between the L1 and L2.
"""

from repro.memory.bus import Bus
from repro.memory.cache import SetAssociativeCache
from repro.memory.dram import MainMemory
from repro.memory.hierarchy import AccessResult, MemoryHierarchy
from repro.memory.mshr import MshrFile
from repro.memory.tlb import DataTlb

__all__ = [
    "Bus",
    "SetAssociativeCache",
    "MainMemory",
    "AccessResult",
    "MemoryHierarchy",
    "MshrFile",
    "DataTlb",
]
