"""Set-associative cache with true-LRU replacement.

The cache stores *block addresses* only — this is a timing simulator, so
no data payloads are modelled.  A block is resident from the cycle its
fill completes until it is evicted; in-flight blocks live in the MSHR
file, not here, which gives the paper's miss accounting for free
(Section 6: "accesses to in-flight data count as cache misses").
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.config import CacheConfig
from repro.utils import block_address


class SetAssociativeCache:
    """A tag store: ``num_sets`` sets of ``associativity`` LRU-ordered ways."""

    def __init__(self, config: CacheConfig) -> None:
        self.config = config
        self.block_size = config.block_size
        self.num_sets = config.num_sets
        self.associativity = config.associativity
        # Each set maps block address -> dirty flag, in LRU -> MRU order.
        self._sets: List[OrderedDict] = [OrderedDict() for _ in range(self.num_sets)]
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def _set_for(self, block_addr: int) -> OrderedDict:
        index = (block_addr // self.block_size) % self.num_sets
        return self._sets[index]

    def align(self, address: int) -> int:
        """Align a byte address down to this cache's block boundary."""
        return block_address(address, self.block_size)

    def probe(self, address: int) -> bool:
        """Tag check without touching LRU state or statistics."""
        block = self.align(address)
        return block in self._set_for(block)

    def access(self, address: int, is_store: bool = False) -> bool:
        """Demand access: returns hit/miss, updates LRU and statistics."""
        # align() and _set_for() inlined: this is the hottest call in
        # the whole memory system (every load and store lands here).
        block_size = self.block_size
        block = address & ~(block_size - 1)
        cache_set = self._sets[(block // block_size) % self.num_sets]
        self.accesses += 1
        if block in cache_set:
            cache_set.move_to_end(block)
            if is_store:
                cache_set[block] = True
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, address: int, dirty: bool = False) -> Optional[Tuple[int, bool]]:
        """Fill a block; return the evicted ``(block, dirty)`` pair, if any.

        Filling a block that is already resident just refreshes its LRU
        position (and may add the dirty bit); nothing is evicted.
        """
        block = self.align(address)
        cache_set = self._set_for(block)
        if block in cache_set:
            cache_set.move_to_end(block)
            if dirty:
                cache_set[block] = True
            return None
        victim = None
        if len(cache_set) >= self.associativity:
            victim_block, victim_dirty = cache_set.popitem(last=False)
            victim = (victim_block, victim_dirty)
            self.evictions += 1
            if victim_dirty:
                self.dirty_evictions += 1
        cache_set[block] = dirty
        return victim

    def mark_dirty(self, address: int) -> bool:
        """Set the dirty bit on a resident block; returns False if absent."""
        block = self.align(address)
        cache_set = self._set_for(block)
        if block not in cache_set:
            return False
        cache_set[block] = True
        return True

    def invalidate(self, address: int) -> bool:
        """Drop a block if resident; returns whether anything was removed."""
        block = self.align(address)
        cache_set = self._set_for(block)
        if block in cache_set:
            del cache_set[block]
            return True
        return False

    @property
    def resident_blocks(self) -> int:
        return sum(len(s) for s in self._sets)

    @property
    def miss_rate(self) -> float:
        if self.accesses == 0:
            return 0.0
        return self.misses / self.accesses

    def reset_stats(self) -> None:
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.dirty_evictions = 0

    def __repr__(self) -> str:
        return (
            f"SetAssociativeCache({self.config.name}: "
            f"{self.config.size_bytes}B {self.associativity}-way "
            f"{self.block_size}B lines, MR={self.miss_rate:.3f})"
        )
