"""Main-memory model.

DRAM is a fixed-latency device behind the L2-to-memory bus: an access
costs :attr:`MemoryConfig.access_latency` cycles, and moving the L2 block
over the 4 bytes/cycle bus adds the transfer time on top (Section 5.1).
"""

from __future__ import annotations

from repro.config import MemoryConfig
from repro.memory.bus import Bus


class MainMemory:
    """Fixed-latency DRAM reached over a shared bus."""

    def __init__(self, config: MemoryConfig, bus: Bus) -> None:
        self.config = config
        self.bus = bus
        self.accesses = 0

    def access(self, earliest_cycle: int, num_bytes: int) -> int:
        """Fetch ``num_bytes`` starting no earlier than ``earliest_cycle``.

        Returns the cycle the data is fully delivered to the L2.  The bus
        is held for the block transfer; the DRAM array access itself
        happens before the transfer begins.
        """
        self.accesses += 1
        ready_to_transfer = earliest_cycle + self.config.access_latency
        transfer_start = self.bus.acquire(ready_to_transfer, num_bytes)
        return transfer_start + self.bus.transfer_cycles(num_bytes)

    def reset_stats(self) -> None:
        self.accesses = 0
