"""Structured exception taxonomy for the whole package.

Every error the library raises deliberately derives from
:class:`ReproError`, so callers (the CLI, the campaign runner) can
distinguish "this experiment is broken" from a genuine bug and react
with a policy instead of a traceback:

- :class:`ConfigError` — a configuration value is invalid.  Determinate:
  retrying the same run can never succeed.
- :class:`TraceFormatError` — a trace file or record stream does not
  parse.  Determinate for the same input.
- :class:`SimulationError` — the simulation itself crashed (a bug, a
  poisoned machine state, a killed worker).  Treated as *retryable*
  because transient causes (a dying worker process, an injected fault)
  are indistinguishable from the outside.
- :class:`RunTimeoutError` — a run exceeded its wall-clock budget.
  Retryable: a hang may be load-dependent.
- :class:`IntegrityError` — the simulator violated one of its own
  runtime invariants (an MSHR leak, bus over-subscription, a counter
  escaping its saturation bounds) or disagreed with the golden
  reference model.  *Never* retryable: the state is provably wrong and
  re-running the same deterministic simulation reproduces the same
  corruption; any number it would report is untrustworthy.

The ``retryable`` class attribute drives the campaign runner's
retry-with-backoff policy; ``exit_code`` drives the CLI.

This module is a leaf: it must not import anything else from
:mod:`repro`, so every layer can depend on it without cycles.  All
classes pickle cleanly because failures must cross process boundaries
(``concurrent.futures.ProcessPoolExecutor``).
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all deliberate errors raised by this package."""

    #: Whether the campaign runner should retry a run that failed this way.
    retryable = False
    #: Process exit status the CLI maps this error to.
    exit_code = 1


class ConfigError(ReproError, ValueError):
    """A configuration value is invalid (caught at construction time).

    ``field`` names the offending dataclass field, e.g.
    ``"CacheConfig.size_bytes"``.
    """

    retryable = False

    def __init__(self, message: str, field: Optional[str] = None) -> None:
        super().__init__(message)
        self.field = field

    def __reduce__(self):
        return (type(self), (self.args[0], self.field))


class TraceFormatError(ReproError, ValueError):
    """A trace file or record stream does not parse.

    ``line_number`` is 1-based (the header is line 1); ``line`` holds the
    offending text.  Both are ``None`` when the error is not tied to a
    specific line (e.g. an unreadable file).
    """

    retryable = False

    def __init__(
        self,
        message: str,
        line_number: Optional[int] = None,
        line: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.line_number = line_number
        self.line = line

    def __reduce__(self):
        return (type(self), (self.args[0], self.line_number, self.line))


class SimulationError(ReproError):
    """The simulation crashed while running (not an input problem)."""

    retryable = True


class RunTimeoutError(SimulationError):
    """A run exceeded its wall-clock timeout and was killed."""

    retryable = True


class WorkerPoisonedError(SimulationError):
    """A campaign point's worker died ``max_worker_kills`` times.

    The watchdog stops feeding the point to fresh workers once the kill
    budget is spent: whatever the point does, it takes its host process
    down with it, so the campaign marks it *poisoned* and moves on.
    Not retryable — the budget already was the retry policy.
    """

    retryable = False


class ServiceError(ReproError):
    """The campaign service could not process a request.

    Raised by the job store, lease manager, HTTP front end, and the
    ``serve``/``submit``/``jobs`` CLI commands.  Determinate from the
    caller's point of view: re-sending the identical request hits the
    same condition (idempotent submission makes the retry harmless,
    but not useful).
    """

    retryable = False


class BackPressureError(ServiceError):
    """The service's admission queue is full; retry after a delay.

    ``retry_after`` is the suggested wait in seconds, surfaced to HTTP
    clients as a ``Retry-After`` header on the 429 response.  Bounded
    queues with explicit rejection are what keep a flooded service
    predictable instead of slow-then-dead.
    """

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after = retry_after

    def __reduce__(self):
        return (type(self), (self.args[0], self.retry_after))


class LeaseLostError(ServiceError):
    """A worker's lease on a job expired or was claimed by another owner.

    The fencing signal of the service's exactly-once story: a worker
    whose heartbeat falls behind (wedged, paused, partitioned) finds
    out at its next renewal and must abandon the job without recording
    a completion — the lease's new owner (or the reaper) now speaks
    for the job.  Never retryable: the lease is gone.
    """

    retryable = False


class IntegrityError(ReproError):
    """The simulation reached a provably inconsistent state.

    ``invariant`` names the violated check (e.g. ``"mshr.balance"``),
    ``cycle`` is the simulation cycle at which the violation was
    detected (``None`` for post-run differential checks), and
    ``state_dump`` is a small JSON-able snapshot of the offending
    component's state, captured at detection time for post-mortems.
    """

    retryable = False

    def __init__(
        self,
        message: str,
        invariant: Optional[str] = None,
        cycle: Optional[int] = None,
        state_dump: Optional[dict] = None,
    ) -> None:
        super().__init__(message)
        self.invariant = invariant
        self.cycle = cycle
        self.state_dump = state_dump if state_dump is not None else {}

    def __reduce__(self):
        return (
            type(self),
            (self.args[0], self.invariant, self.cycle, self.state_dump),
        )


def error_kind(error: BaseException) -> str:
    """Stable name used for failures in checkpoints and manifests."""
    return type(error).__name__
