"""Durable small-file I/O shared by the persistence layers.

Every artifact the runner *rewrites in place* — the campaign manifest,
metrics payloads, reports — must go through :func:`atomic_write_text`:
the bytes land in a uniquely named temp file first (flushed and
fsync'd), then one ``os.replace`` makes them visible.  A reader — or a
process killed mid-rewrite — can therefore only ever observe the old
complete file or the new complete file, never a truncated hybrid.

This module is a leaf (stdlib only) so any layer can use it without
import cycles.
"""

from __future__ import annotations

import json
import os
import uuid
import zlib
from typing import Any, Union


def crc32_of(data: Union[bytes, bytearray, memoryview]) -> int:
    """The CRC32 of ``data`` as an unsigned 32-bit integer."""
    return zlib.crc32(data) & 0xFFFFFFFF


def atomic_write_text(path: str, text: str) -> None:
    """Replace ``path``'s contents with ``text`` atomically.

    The temp name is unique per writer so concurrent writers cannot
    interleave into one file; the loser's complete file simply wins the
    final ``os.replace``.  On failure the temp file is removed and the
    original ``path`` is left untouched.
    """
    directory = os.path.dirname(path) or "."
    os.makedirs(directory, exist_ok=True)
    tmp_path = f"{path}.tmp.{os.getpid()}.{uuid.uuid4().hex[:8]}"
    try:
        with open(tmp_path, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    finally:
        if os.path.exists(tmp_path):
            try:
                os.unlink(tmp_path)
            except OSError:
                pass


def atomic_write_json(path: str, payload: Any, indent: int = 2) -> None:
    """Serialize ``payload`` and write it to ``path`` atomically."""
    atomic_write_text(
        path, json.dumps(payload, indent=indent, sort_keys=True) + "\n"
    )
