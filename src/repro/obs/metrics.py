"""Typed metrics registry with near-zero cost when disabled.

Three instrument types cover everything the reports need:

- :class:`CounterMetric` — a monotonically increasing event count;
- :class:`GaugeMetric` — a point-in-time value (occupancy, priority);
- :class:`HistogramMetric` — a distribution over fixed bucket bounds
  (miss latency).

Components may *push* into instruments they create through
:meth:`MetricsRegistry.counter` / :meth:`~MetricsRegistry.gauge` /
:meth:`~MetricsRegistry.histogram`, but most of the simulator is wired
the cheaper way: :meth:`MetricsRegistry.probe` registers a zero-argument
callable that reads a counter the component *already maintains* (for
example ``MemoryHierarchy.demand_misses``), and
:meth:`MetricsRegistry.sample` reads every instrument and probe into a
time series at fixed cycle boundaries.  The hot paths therefore carry no
instrumentation at all — sampling is a pure read between core
``advance`` calls, which is also why results are bit-identical with
metrics on or off.

**Disabled sink.**  A registry constructed with ``enabled=False`` (the
module-level :data:`NULL_REGISTRY`) hands out shared no-op instrument
singletons, ignores probe registrations, and makes ``sample`` a no-op.
No dict entries, list appends, or instrument objects are allocated on
that path, so a component can hold an instrument unconditionally and pay
one dynamic dispatch per event when observability is off.

Registries are excluded from simulation snapshots for the same reason
:class:`~repro.perf.collector.PerfCollector` is: observation state could
never be replayed meaningfully, and snapshot payloads must stay
bit-identical however much (or little) observation happened around a
run.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple


def metric_name(component: str, name: str) -> str:
    """The fully qualified ``component.name`` key a metric is stored under."""
    return f"{component}.{name}"


class CounterMetric:
    """A monotonically increasing event counter."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def increment(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        self.value += amount

    def read(self) -> float:
        """The current count."""
        return float(self.value)

    def __repr__(self) -> str:
        return f"CounterMetric({self.name}={self.value})"


class GaugeMetric:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current value of the measured quantity."""
        self.value = value

    def read(self) -> float:
        """The most recently set value."""
        return float(self.value)

    def __repr__(self) -> str:
        return f"GaugeMetric({self.name}={self.value})"


class HistogramMetric:
    """A distribution over fixed, inclusive upper-bound buckets.

    ``bounds`` must be strictly increasing.  An observation ``v`` lands
    in the first bucket whose bound satisfies ``v <= bound``; values
    above the last bound land in the implicit overflow bucket.  The
    bucket layout is fixed at construction so two histograms with the
    same bounds are directly comparable.
    """

    __slots__ = ("name", "bounds", "counts", "overflow", "total", "sum")

    def __init__(self, name: str, bounds: Sequence[float]) -> None:
        if not bounds:
            raise ValueError(f"histogram {name!r}: bounds must be non-empty")
        if any(b2 <= b1 for b1, b2 in zip(bounds, bounds[1:])):
            raise ValueError(
                f"histogram {name!r}: bounds must be strictly increasing, "
                f"got {tuple(bounds)}"
            )
        self.name = name
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        self.total += 1
        self.sum += value
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                self.counts[index] += 1
                return
        self.overflow += 1

    @property
    def mean(self) -> float:
        """Mean of all observations (0.0 when empty)."""
        if self.total == 0:
            return 0.0
        return self.sum / self.total

    def reset(self) -> None:
        """Zero every bucket.

        The warm-up boundary calls this so the histogram shadows the
        component statistics it sits next to.
        """
        self.counts = [0] * len(self.bounds)
        self.overflow = 0
        self.total = 0
        self.sum = 0.0

    def read(self) -> float:
        """Total observation count (the scalar a time series samples)."""
        return float(self.total)

    def buckets(self) -> Dict[str, int]:
        """Bucket label -> count, including the overflow bucket."""
        out = {
            f"le_{bound:g}": count
            for bound, count in zip(self.bounds, self.counts)
        }
        out["overflow"] = self.overflow
        return out

    def __repr__(self) -> str:
        return f"HistogramMetric({self.name}: n={self.total})"


class _NullCounter(CounterMetric):
    """Shared do-nothing counter handed out by a disabled registry."""

    def increment(self, amount: int = 1) -> None:
        """Discard the event without touching any state."""


class _NullGauge(GaugeMetric):
    """Shared do-nothing gauge handed out by a disabled registry."""

    def set(self, value: float) -> None:
        """Discard the value without touching any state."""


class _NullHistogram(HistogramMetric):
    """Shared do-nothing histogram handed out by a disabled registry."""

    def observe(self, value: float) -> None:
        """Discard the observation without touching any state."""


#: The shared no-op instruments.  A disabled registry returns these very
#: objects — holding one costs nothing and using one allocates nothing.
NULL_COUNTER = _NullCounter("null")
NULL_GAUGE = _NullGauge("null")
NULL_HISTOGRAM = _NullHistogram("null", bounds=(1.0,))


class MetricsRegistry:
    """Instruments and probes registered by component, sampled over time.

    One registry serves a whole simulator.  Metrics are namespaced as
    ``component.name`` (``hierarchy.demand_misses``, ``sb3.priority``),
    and :meth:`sample` appends one row — every instrument and probe
    value at one cycle — to :attr:`samples`.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._counters: Dict[str, CounterMetric] = {}
        self._gauges: Dict[str, GaugeMetric] = {}
        self._histograms: Dict[str, HistogramMetric] = {}
        self._probes: Dict[str, Callable[[], float]] = {}
        #: One dict per sampling boundary: ``{"cycle": int, "values": {...}}``.
        self.samples: List[Dict[str, Any]] = []

    # -- registration --------------------------------------------------

    def counter(self, component: str, name: str) -> CounterMetric:
        """Create (or fetch) the counter ``component.name``."""
        if not self.enabled:
            return NULL_COUNTER
        key = metric_name(component, name)
        instrument = self._counters.get(key)
        if instrument is None:
            instrument = self._counters[key] = CounterMetric(key)
        return instrument

    def gauge(self, component: str, name: str) -> GaugeMetric:
        """Create (or fetch) the gauge ``component.name``."""
        if not self.enabled:
            return NULL_GAUGE
        key = metric_name(component, name)
        instrument = self._gauges.get(key)
        if instrument is None:
            instrument = self._gauges[key] = GaugeMetric(key)
        return instrument

    def histogram(
        self, component: str, name: str, bounds: Sequence[float]
    ) -> HistogramMetric:
        """Create (or fetch) the histogram ``component.name``."""
        if not self.enabled:
            return NULL_HISTOGRAM
        key = metric_name(component, name)
        instrument = self._histograms.get(key)
        if instrument is None:
            instrument = self._histograms[key] = HistogramMetric(key, bounds)
        return instrument

    def probe(
        self, component: str, name: str, read: Callable[[], float]
    ) -> None:
        """Register ``read`` to be sampled as ``component.name``.

        Re-registering the same name replaces the callable, so run-scoped
        probes (core progress, bound to one run's state) can simply be
        re-bound at the start of each run.
        """
        if not self.enabled:
            return
        self._probes[metric_name(component, name)] = read

    # -- sampling ------------------------------------------------------

    def snapshot(self) -> Dict[str, float]:
        """Current value of every instrument and probe, one flat dict."""
        if not self.enabled:
            return {}
        values: Dict[str, float] = {}
        for key, counter in self._counters.items():
            values[key] = counter.read()
        for key, gauge in self._gauges.items():
            values[key] = gauge.read()
        for key, hist in self._histograms.items():
            values[key] = hist.read()
        for key, read in self._probes.items():
            values[key] = float(read())
        return values

    def sample(self, cycle: int) -> None:
        """Append one time-series row for ``cycle``.

        Re-sampling the same cycle (e.g. a final sample landing exactly
        on a periodic boundary) is a no-op, so boundary bookkeeping in
        callers stays simple.
        """
        if not self.enabled:
            return
        if self.samples and self.samples[-1]["cycle"] == cycle:
            return
        self.samples.append({"cycle": cycle, "values": self.snapshot()})

    def sample_cycles(self) -> List[int]:
        """The cycles at which samples were taken, in order."""
        return [row["cycle"] for row in self.samples]

    def series(self, key: str) -> List[Tuple[int, float]]:
        """The ``(cycle, value)`` time series of one metric."""
        return [
            (row["cycle"], row["values"][key])
            for row in self.samples
            if key in row["values"]
        ]

    # -- persistence ---------------------------------------------------

    def to_payload(self) -> Dict[str, Any]:
        """A JSON-able dump: final values, histograms, and the series."""
        return {
            "final": self.snapshot(),
            "histograms": {
                key: {
                    "bounds": list(hist.bounds),
                    "buckets": hist.buckets(),
                    "total": hist.total,
                    "mean": hist.mean,
                }
                for key, hist in self._histograms.items()
            },
            "samples": [dict(row) for row in self.samples],
        }

    # -- pickling ------------------------------------------------------
    # Snapshots capture the simulator object graph; probes close over
    # live component state and must not (and could not meaningfully) be
    # replayed, so a registry always pickles as a fresh disabled one —
    # exactly the PerfCollector contract.

    def __getstate__(self):
        return {"enabled": False}

    def __setstate__(self, state):
        self.__init__(enabled=False)

    def __repr__(self) -> str:
        if not self.enabled:
            return "MetricsRegistry(disabled)"
        return (
            f"MetricsRegistry({len(self._counters)} counters, "
            f"{len(self._gauges)} gauges, {len(self._histograms)} "
            f"histograms, {len(self._probes)} probes, "
            f"{len(self.samples)} samples)"
        )


#: The process-wide disabled registry: every instrument request returns
#: a shared no-op singleton and sampling does nothing.
NULL_REGISTRY = MetricsRegistry(enabled=False)


#: Miss-latency histogram bucket bounds (cycles): L1-ish, L2-ish, and
#: memory-ish regimes of the Section 5.1 machine.
MISS_LATENCY_BOUNDS: Tuple[float, ...] = (
    2.0, 5.0, 10.0, 20.0, 40.0, 80.0, 160.0, 320.0,
)
