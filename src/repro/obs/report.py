"""Render metrics payloads and campaign manifests into run reports.

Input is the JSON document ``repro-sim run --metrics`` writes (see
:func:`repro.obs.metrics_payload`), optionally joined with a JSONL event
trace, or a campaign directory produced by ``repro-sim sweep``.  Output
is a self-contained markdown report — or single-file HTML via a small
built-in converter — with the evaluation views the paper leans on:

- hit-rate breakdown (L1 / stream buffer / L2 / memory, Figure 5 shape),
- bus occupancy timelines (busy-cycle deltas between samples),
- per-buffer hit/allocation tables and priority-counter traces
  (the Figure 7/8 dynamics),
- predictor accuracy over time,
- a demand miss-latency histogram.

Timelines are drawn as unicode sparklines so the report needs no
plotting dependency and renders in any terminal or browser.
"""

from __future__ import annotations

import html
import json
import os
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigError

#: Format tag stamped into (and required of) every metrics payload.
PAYLOAD_FORMAT = "repro-obs-metrics-v1"

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def load_metrics(path: str) -> Dict[str, Any]:
    """Load and validate a metrics payload written by ``run --metrics``."""
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise ConfigError(
            f"metrics file {path!r}: {exc}", field="report.metrics"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ConfigError(
            f"metrics file {path!r} is not valid JSON: {exc}",
            field="report.metrics",
        ) from exc
    if payload.get("format") != PAYLOAD_FORMAT:
        raise ConfigError(
            f"metrics file {path!r}: expected format {PAYLOAD_FORMAT!r}, "
            f"got {payload.get('format')!r} — was it written by "
            f"'repro-sim run --metrics'?",
            field="report.metrics",
        )
    return payload


def sparkline(values: Sequence[float], width: int = 48) -> str:
    """Draw ``values`` as a fixed-width unicode sparkline.

    Longer series are downsampled by averaging evenly sized chunks; the
    vertical scale is min..max of the (downsampled) series.
    """
    if not values:
        return ""
    if len(values) > width:
        chunk = len(values) / width
        values = [
            _mean(values[int(i * chunk): max(int((i + 1) * chunk), int(i * chunk) + 1)])
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_LEVELS[0] * len(values)
    top = len(_SPARK_LEVELS) - 1
    return "".join(
        _SPARK_LEVELS[int((v - lo) / span * top + 0.5)] for v in values
    )


def _mean(values: Sequence[float]) -> float:
    return sum(values) / len(values) if values else 0.0


def _series(payload: Dict[str, Any], key: str) -> List[Tuple[int, float]]:
    """The ``(cycle, value)`` series of one metric from a payload."""
    return [
        (row["cycle"], row["values"][key])
        for row in payload.get("samples", ())
        if key in row.get("values", {})
    ]


def _deltas(series: List[Tuple[int, float]]) -> List[float]:
    """Per-interval increases of a cumulative series.

    Clamped at zero: the one negative step a warm-up stats reset causes
    would otherwise dominate the timeline's vertical scale.
    """
    return [max(0.0, b[1] - a[1]) for a, b in zip(series, series[1:])]


def _fmt(value: float) -> str:
    """Render a metric value compactly (integers without decimals)."""
    if value == int(value):
        return str(int(value))
    return f"{value:.4f}"


def _pct(numerator: float, denominator: float) -> str:
    if denominator <= 0:
        return "n/a"
    return f"{100.0 * numerator / denominator:.1f}%"


def _table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> List[str]:
    """A GitHub-flavoured markdown table as a list of lines."""
    lines = [
        "| " + " | ".join(headers) + " |",
        "| " + " | ".join("---" for _ in headers) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


# ---------------------------------------------------------------------------
# Single-run report
# ---------------------------------------------------------------------------


def run_report(
    payload: Dict[str, Any],
    events: Optional[List[Dict[str, Any]]] = None,
    title: str = "Run report",
) -> str:
    """Render one run's metrics payload (and optional events) to markdown."""
    final = payload.get("final", {})
    result = payload.get("result", {})
    meta = payload.get("meta", {})
    out: List[str] = [f"# {title}", ""]
    out.extend(_section_summary(meta, result, payload))
    out.extend(_section_sampling(result))
    out.extend(_section_hit_rates(final, result))
    out.extend(_section_stream_buffers(payload, final))
    out.extend(_section_buffer_sharing(payload, final))
    out.extend(_section_bus(payload, final))
    out.extend(_section_predictor(payload, final))
    out.extend(_section_latency(payload))
    if events is not None:
        out.extend(_section_events(events))
    return "\n".join(out).rstrip() + "\n"


def _section_summary(
    meta: Dict[str, Any], result: Dict[str, Any], payload: Dict[str, Any]
) -> List[str]:
    rows = []
    for label, key in (
        ("Workload", "workload"),
        ("Machine", "machine"),
        ("Seed", "seed"),
    ):
        if key in meta:
            rows.append((label, meta[key]))
    for label, key in (
        ("Instructions", "instructions"),
        ("Cycles", "cycles"),
        ("IPC", "ipc"),
        ("L1 miss rate", "l1_miss_rate"),
        ("Avg load latency", "avg_load_latency"),
        ("Prefetch accuracy", "prefetch_accuracy"),
        ("Prefetch coverage", "prefetch_coverage"),
    ):
        if key in result and result[key] is not None:
            value = result[key]
            rows.append((label, _fmt(float(value))))
    interval = payload.get("interval")
    samples = payload.get("samples", ())
    rows.append(("Samples", f"{len(samples)} (every {interval} cycles)"))
    lines = ["## Summary", ""]
    lines.extend(_table(("Quantity", "Value"), rows))
    lines.append("")
    return lines


def _section_sampling(result: Dict[str, Any]) -> List[str]:
    """The sampled-run panel: CI bar plus the per-window breakdown.

    Present only for results produced by the SMARTS-style sampling
    driver (``extra.sampled``); detailed runs render nothing here.
    """
    extra = result.get("extra", {})
    if not extra.get("sampled"):
        return []
    ipc = float(result.get("ipc", 0.0))
    ci = float(extra.get("ipc_ci95", 0.0))
    windows = int(extra.get("windows", 0))
    lines = ["## Sampling", ""]
    lines.append(
        f"Systematic sample: **{windows} windows** of "
        f"{_fmt(extra.get('sample_window', 0))} measured instructions "
        f"(+{_fmt(extra.get('sample_warmup', 0))} warm-up) every "
        f"{_fmt(extra.get('sample_period', 0))} records; "
        f"{_fmt(extra.get('ff_instructions', 0))} instructions "
        "fast-forwarded between windows."
    )
    lines.append("")
    strata = int(extra.get("sample_strata", 1))
    warm = bool(extra.get("sample_warm_confidence", 0.0))
    if strata > 1 or warm:
        knobs = []
        if strata > 1:
            knobs.append(
                f"stratified placement ({strata} sub-windows per period)"
            )
        if warm:
            knobs.append("timing-aware predictor warm-up")
        lines.append(f"Cold-start controls: {'; '.join(knobs)}.")
        lines.append("")
    lines.append(
        f"Estimated IPC **{ipc:.4f} ± {ci:.4f}** (95% CI over "
        "per-window IPC; the whole-trace estimate is "
        "instruction-weighted)."
    )
    lines.append("")
    rows = []
    ipcs = []
    for index in range(windows):
        key = f"win.{index}.ipc"
        if key not in extra:
            break  # rows past the export cap (_MAX_WINDOW_ROWS)
        ipcs.append(float(extra[key]))
        rows.append(
            (
                str(index),
                f"{extra[key]:.4f}",
                _fmt(extra.get(f"win.{index}.instructions", 0)),
                _fmt(extra.get(f"win.{index}.cycles", 0)),
                f"{extra.get(f'win.{index}.miss_rate', 0.0):.4f}",
            )
        )
    truncated = int(extra.get("windows_truncated", 0))
    if rows:
        if truncated or len(rows) < windows:
            dropped = truncated or windows - len(rows)
            lines.append(
                f"**{dropped} window row(s) not exported** (per-window "
                f"extras cap): the table shows the first {len(rows)} of "
                f"{windows} windows; the stitched estimate above covers "
                "all of them."
            )
            lines.append("")
        lines.extend(
            _table(
                ("Window", "IPC", "Instructions", "Cycles", "L1 miss rate"),
                rows,
            )
        )
        lines.append("")
    if len(ipcs) >= 2:
        lines.append(f"Window IPC over the trace: `{sparkline(ipcs)}`")
        lines.append("")
    return lines


def _section_hit_rates(
    final: Dict[str, float], result: Dict[str, Any]
) -> List[str]:
    accesses = final.get("hierarchy.demand_accesses", 0)
    if not accesses:
        return []
    l1_hits = accesses - final.get("hierarchy.demand_misses", 0)
    sb_hits = final.get("hierarchy.sb_hits", 0) + final.get(
        "hierarchy.sb_pending_hits", 0
    )
    l2 = final.get("hierarchy.demand_l2_fetches", 0)
    mem = final.get("hierarchy.demand_mem_fetches", 0)
    rows = [
        ("L1 cache", _fmt(l1_hits), _pct(l1_hits, accesses)),
        ("Stream buffers", _fmt(sb_hits), _pct(sb_hits, accesses)),
        ("L2 cache", _fmt(l2), _pct(l2, accesses)),
        ("Memory", _fmt(mem), _pct(mem, accesses)),
        ("Total demand accesses", _fmt(accesses), "100.0%"),
    ]
    lines = ["## Hit-rate breakdown", ""]
    lines.append(
        "Where demand loads were served (the Figure 5 view: stream-buffer "
        "hits are misses the prefetcher removed)."
    )
    lines.append("")
    lines.extend(_table(("Served by", "Accesses", "Share"), rows))
    lines.append("")
    return lines


def _buffer_components(final: Dict[str, float]) -> List[str]:
    names = sorted(
        {k.split(".")[0] for k in final if k.startswith("sb")},
        key=lambda s: int(s[2:]) if s[2:].isdigit() else 0,
    )
    return [n for n in names if n[2:].isdigit()]


def _section_stream_buffers(
    payload: Dict[str, Any], final: Dict[str, float]
) -> List[str]:
    buffers = _buffer_components(final)
    if not buffers:
        return []
    rows = []
    total_hits = sum(final.get(f"{b}.hits", 0) for b in buffers) or 1
    for b in buffers:
        hits = final.get(f"{b}.hits", 0)
        rows.append(
            (
                b,
                _fmt(final.get(f"{b}.allocations", 0)),
                _fmt(hits),
                _pct(hits, total_hits),
                _fmt(final.get(f"{b}.priority", 0)),
            )
        )
    lines = ["## Stream buffers", ""]
    lines.extend(
        _table(
            ("Buffer", "Allocations", "Hits", "Hit share", "Final priority"),
            rows,
        )
    )
    lines.append("")
    traces = []
    for b in buffers:
        series = _series(payload, f"{b}.priority")
        if len(series) >= 2:
            traces.append((b, sparkline([v for _, v in series])))
    if traces:
        lines.append("Priority-counter traces (sampled; Figure 7/8 dynamics):")
        lines.append("")
        lines.append("```")
        width = max(len(b) for b, _ in traces)
        for b, spark in traces:
            lines.append(f"{b:<{width}}  {spark}")
        lines.append("```")
        lines.append("")
    return lines


def _section_buffer_sharing(
    payload: Dict[str, Any], final: Dict[str, float]
) -> List[str]:
    """The shared-pool panel, present only under a pooled sharing policy.

    Fixed partitioning registers no ``pool.*`` metrics, so the section
    disappears rather than showing a table of zeros.
    """
    if "pool.allocated" not in final:
        return []
    grants = final.get("pool.acquires", 0) + final.get("pool.steals", 0)
    rows = [
        ("Entries in use", _fmt(final.get("pool.allocated", 0))),
        ("Grants from free credit", _fmt(final.get("pool.acquires", 0))),
        ("Grants by eviction (steals)", _fmt(final.get("pool.steals", 0))),
        ("Requests denied", _fmt(final.get("pool.denials", 0))),
        ("Entries released", _fmt(final.get("pool.releases", 0))),
        ("Live prefetches evicted", _fmt(final.get("pool.evicted_inflight", 0))),
        (
            "Steal share of grants",
            _pct(final.get("pool.steals", 0), grants or 1),
        ),
    ]
    lines = ["## Buffer sharing (entry pool)", ""]
    lines.extend(_table(("Pool statistic", "Value"), rows))
    lines.append("")
    series = _series(payload, "pool.allocated")
    if len(series) >= 2:
        lines.append("Pool occupancy trace (sampled):")
        lines.append("")
        lines.append("```")
        lines.append(sparkline([v for _, v in series]))
        lines.append("```")
        lines.append("")
    return lines


def _section_bus(payload: Dict[str, Any], final: Dict[str, float]) -> List[str]:
    interval = payload.get("interval") or 0
    lines: List[str] = []
    for component, label in (
        ("bus_l1_l2", "L1–L2 bus"),
        ("bus_l2_mem", "L2–memory bus"),
    ):
        key = f"{component}.busy_cycles"
        series = _series(payload, key)
        busy = final.get(key)
        if busy is None:
            continue
        if not lines:
            lines = ["## Bus occupancy", ""]
        deltas = _deltas(series)
        cycles = payload.get("result", {}).get("cycles", 0)
        summary = f"- **{label}**: {_fmt(busy)} busy cycles"
        if cycles:
            summary += f" ({_pct(busy, cycles)} of the run)"
        txn = final.get(f"{component}.transactions")
        if txn is not None:
            summary += f", {_fmt(txn)} transactions"
        lines.append(summary)
        if deltas and interval:
            peak = max(deltas)
            lines.append(
                f"  - occupancy per {interval}-cycle window "
                f"(peak {_pct(peak, interval)}): `{sparkline(deltas)}`"
            )
    if lines:
        lines.append("")
    return lines


def _section_predictor(
    payload: Dict[str, Any], final: Dict[str, float]
) -> List[str]:
    lines: List[str] = []
    rows = []
    for label, key in (
        ("Predictor trains", "predictor.trains"),
        ("Correct trains", "predictor.correct_trains"),
        ("Predictor accuracy", "predictor.accuracy"),
        ("Predictions made", "prefetcher.predictions_made"),
        ("Prefetches issued", "prefetcher.prefetches_issued"),
        ("Prefetches used", "prefetcher.prefetches_used"),
        ("Allocations", "prefetcher.allocations"),
        ("Allocations denied", "prefetcher.allocations_denied"),
    ):
        if key in final:
            rows.append((label, _fmt(final[key])))
    if not rows:
        return lines
    lines = ["## Predictor and prefetcher", ""]
    lines.extend(_table(("Quantity", "Value"), rows))
    lines.append("")
    series = _series(payload, "predictor.accuracy")
    if len(series) >= 2:
        lines.append(
            f"Accuracy over time: `{sparkline([v for _, v in series])}` "
            f"(cycles {series[0][0]}..{series[-1][0]})"
        )
        lines.append("")
    return lines


def _section_latency(payload: Dict[str, Any]) -> List[str]:
    hist = payload.get("histograms", {}).get("hierarchy.miss_latency")
    if not hist or not hist.get("total"):
        return []
    lines = ["## Demand miss latency", ""]
    lines.append(
        f"{hist['total']} misses, mean {hist['mean']:.1f} cycles."
    )
    lines.append("")
    buckets = hist.get("buckets", {})
    total = hist["total"]
    rows = [
        (label, str(count), _pct(count, total))
        for label, count in buckets.items()
        if count
    ]
    lines.extend(_table(("Bucket (cycles)", "Misses", "Share"), rows))
    lines.append("")
    return lines


def _section_events(events: List[Dict[str, Any]]) -> List[str]:
    lines = ["## Event trace", ""]
    if not events:
        lines.append("No events captured.")
        lines.append("")
        return lines
    tally: Dict[str, int] = {}
    for event in events:
        key = f"{event.get('category', '?')}/{event.get('event', '?')}"
        tally[key] = tally.get(key, 0) + 1
    rows = [(key, str(count)) for key, count in sorted(tally.items())]
    lines.append(
        f"{len(events)} events, cycles "
        f"{events[0].get('cycle')}..{events[-1].get('cycle')}."
    )
    lines.append("")
    lines.extend(_table(("Category/event", "Count"), rows))
    lines.append("")
    return lines


# ---------------------------------------------------------------------------
# Paired sampling
# ---------------------------------------------------------------------------


def paired_section(payload: Dict[str, Any]) -> List[str]:
    """The "Paired sampling" panel for a matched-pair comparison.

    ``payload`` is a :meth:`repro.sampling.paired.PairedResult.to_dict`
    manifest (``compare --sample --paired-out`` or a ``sweep
    --sample-paired`` campaign's ``paired.json``).
    """
    if not payload.get("paired"):
        return []
    baseline = payload.get("baseline", "?")
    sample = payload.get("sample", {})
    results = payload.get("results", {})
    pairs = payload.get("pairs", {})
    window_rows = payload.get("window_rows", {})
    base_windows = len(window_rows.get(baseline, ()))
    lines = ["## Paired sampling", ""]
    lines.append(
        f"Matched-pair comparison against **{baseline}**: every machine "
        f"sampled over the same {base_windows}-window grid "
        f"({_fmt(sample.get('sample_window', 0))} measured instructions "
        f"every {_fmt(sample.get('sample_period', 0))} records) from one "
        "shared trace cursor, so the fast-forward cold-start bias is "
        "common to both legs and cancels in the IPC ratios."
    )
    lines.append("")
    rows = []
    for label, result in results.items():
        if label == baseline:
            rows.append(
                (label, f"{result.get('ipc', 0.0):.4f}",
                 "1.0000 (baseline)", "-", "-")
            )
            continue
        stats = pairs.get(label, {})
        rows.append(
            (
                label,
                f"{result.get('ipc', 0.0):.4f}",
                f"{stats.get('rel_ipc', 0.0):.4f}",
                f"{stats.get('speedup_percent', 0.0):+.1f}%",
                f"{stats.get('ratio_mean', 0.0):.4f} ± "
                f"{stats.get('ratio_ci95', 0.0):.4f} "
                f"(n={stats.get('windows', 0)})",
            )
        )
    lines.extend(
        _table(
            ("Machine", "Sampled IPC", "Rel. IPC", "Speedup",
             "Window ratio (95% CI)"),
            rows,
        )
    )
    lines.append("")
    for label, rows_ in window_rows.items():
        if label == baseline or len(rows_) < 2:
            continue
        base_rows = window_rows.get(baseline, ())
        ratios = [
            row["ipc"] / base_row["ipc"]
            for base_row, row in zip(base_rows, rows_)
            if base_row.get("ipc")
        ]
        if len(ratios) >= 2:
            lines.append(
                f"`{label}`/`{baseline}` window ratios: "
                f"`{sparkline(ratios)}`"
            )
    if lines[-1] != "":
        lines.append("")
    return lines


# ---------------------------------------------------------------------------
# Campaign report
# ---------------------------------------------------------------------------


def campaign_report(campaign_dir: str) -> str:
    """Render a sweep campaign directory's manifest to markdown.

    Needs the ``manifest.json`` that :class:`~repro.runner.campaign.
    CampaignRunner` maintains; per-point metrics appear when the sweep
    recorded them.
    """
    manifest_path = os.path.join(campaign_dir, "manifest.json")
    name = os.path.basename(os.path.abspath(campaign_dir))
    try:
        with open(manifest_path) as handle:
            manifest = json.load(handle)
    except OSError as exc:
        # A paired sampling sweep (`sweep --sample-paired`) runs inline
        # and leaves only paired.json; render that panel on its own.
        paired_path = os.path.join(campaign_dir, "paired.json")
        if os.path.isfile(paired_path):
            with open(paired_path) as handle:
                payload = json.load(handle)
            out = [f"# Campaign report: {name}", ""]
            out.extend(paired_section(payload))
            return "\n".join(out).rstrip() + "\n"
        raise ConfigError(
            f"campaign dir {campaign_dir!r} has no readable manifest.json: "
            f"{exc}",
            field="report.campaign",
        ) from exc
    out: List[str] = [f"# Campaign report: {name}", ""]
    rows = [
        ("Status", manifest.get("status", "?")),
        ("Total points", manifest.get("total_points", "?")),
        ("Completed", manifest.get("ok", "?")),
        ("Failed", manifest.get("failed", "?")),
        ("Resumed from checkpoint",
         manifest.get("resumed_from_checkpoint", 0)),
    ]
    out.extend(_table(("Quantity", "Value"), rows))
    out.append("")
    metrics = manifest.get("metrics", {})
    if metrics:
        out.append("## Per-point metrics")
        out.append("")
        any_sampled = any(point.get("sampled") for point in metrics.values())
        point_rows = []
        for run_id in sorted(metrics):
            point = metrics[run_id]
            ipc_cell = _fmt(point.get("ipc", 0.0))
            if point.get("sampled"):
                # A sampled point's IPC is an estimate: show its CI and
                # window count so it is never mistaken for an exact run.
                ipc_cell = (
                    f"{point.get('ipc', 0.0):.4f} ± "
                    f"{point.get('ipc_ci95', 0.0):.4f} "
                    f"(sampled, n={point.get('windows', 0)})"
                )
            point_rows.append(
                (
                    run_id,
                    ipc_cell,
                    _fmt(point.get("l1_miss_rate", 0.0)),
                    _fmt(point.get("prefetch_accuracy", 0.0)),
                    _fmt(point.get("cycles", 0)),
                )
            )
        out.extend(
            _table(
                ("Run", "IPC", "L1 miss rate", "Prefetch accuracy", "Cycles"),
                point_rows,
            )
        )
        if any_sampled:
            out.append("")
            out.append(
                "Sampled points report the instruction-weighted estimate "
                "with a 95% confidence interval over per-window IPC."
            )
        out.append("")
        ipcs = [(rid, metrics[rid].get("ipc", 0.0)) for rid in sorted(metrics)]
        if len(ipcs) >= 2:
            out.append(f"IPC across points: `{sparkline([v for _, v in ipcs])}`")
            out.append("")
    paired_path = os.path.join(campaign_dir, "paired.json")
    if os.path.isfile(paired_path):
        try:
            with open(paired_path) as handle:
                paired_payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            paired_payload = None
        if paired_payload:
            out.extend(paired_section(paired_payload))
    failures = manifest.get("failures", [])
    if failures:
        out.append("## Failures")
        out.append("")
        for failure in failures[:20]:
            out.append(
                f"- `{failure.get('run_id', '?')}`: "
                f"{failure.get('kind', '?')} — {failure.get('message', '')}"
            )
        if len(failures) > 20:
            out.append(f"- … and {len(failures) - 20} more")
        out.append("")
    return "\n".join(out).rstrip() + "\n"


# ---------------------------------------------------------------------------
# HTML rendering
# ---------------------------------------------------------------------------

_HTML_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, sans-serif;
       max-width: 60rem; margin: 2rem auto; padding: 0 1rem; color: #1a202c; }
table { border-collapse: collapse; margin: 0.75rem 0; }
th, td { border: 1px solid #cbd5e0; padding: 0.3rem 0.7rem; text-align: left; }
th { background: #edf2f7; }
code, pre { font-family: 'SF Mono', Menlo, Consolas, monospace;
            background: #f7fafc; }
pre { padding: 0.75rem; border: 1px solid #e2e8f0; overflow-x: auto; }
h1, h2 { border-bottom: 1px solid #e2e8f0; padding-bottom: 0.25rem; }
"""


def markdown_to_html(markdown: str, title: str = "Run report") -> str:
    """Convert report markdown to a single self-contained HTML page.

    Deliberately minimal: it understands exactly the markdown this
    module emits, not the full spec.
    """
    body: List[str] = []
    lines = markdown.splitlines()
    index = 0
    while index < len(lines):
        line = lines[index]
        if line.startswith("```"):
            fence: List[str] = []
            index += 1
            while index < len(lines) and not lines[index].startswith("```"):
                fence.append(html.escape(lines[index]))
                index += 1
            body.append("<pre>" + "\n".join(fence) + "</pre>")
            index += 1
            continue
        if line.startswith("|"):
            table: List[str] = []
            while index < len(lines) and lines[index].startswith("|"):
                table.append(lines[index])
                index += 1
            body.append(_html_table(table))
            continue
        if line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            text = _html_inline(line[level:].strip())
            body.append(f"<h{level}>{text}</h{level}>")
        elif line.startswith("- "):
            items: List[str] = []
            while index < len(lines) and lines[index].lstrip().startswith("- "):
                stripped = lines[index].lstrip()
                items.append(f"<li>{_html_inline(stripped[2:])}</li>")
                index += 1
            body.append("<ul>" + "".join(items) + "</ul>")
            continue
        elif line.strip():
            body.append(f"<p>{_html_inline(line.strip())}</p>")
        index += 1
    return (
        "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
        f"<title>{html.escape(title)}</title>\n"
        f"<style>{_HTML_CSS}</style>\n</head>\n<body>\n"
        + "\n".join(body)
        + "\n</body>\n</html>\n"
    )


def _html_inline(text: str) -> str:
    """Escape text and apply inline code/bold markup."""
    out: List[str] = []
    escaped = html.escape(text)
    for index, chunk in enumerate(escaped.split("`")):
        if index % 2:
            out.append(f"<code>{chunk}</code>")
        else:
            parts = chunk.split("**")
            for j, part in enumerate(parts):
                out.append(f"<strong>{part}</strong>" if j % 2 else part)
    return "".join(out)


def _html_table(rows: List[str]) -> str:
    out = ["<table>"]
    for row_index, row in enumerate(rows):
        cells = [c.strip() for c in row.strip().strip("|").split("|")]
        if row_index == 1 and all(set(c) <= {"-", ":", " "} for c in cells):
            continue
        tag = "th" if row_index == 0 else "td"
        out.append(
            "<tr>"
            + "".join(f"<{tag}>{_html_inline(c)}</{tag}>" for c in cells)
            + "</tr>"
        )
    out.append("</table>")
    return "".join(out)


def write_report(markdown: str, path: str, title: str = "Run report") -> str:
    """Write ``markdown`` to ``path``; ``.html``/``.htm`` renders HTML.

    Returns the kind written (``"html"`` or ``"markdown"``).
    """
    if path.lower().endswith((".html", ".htm")):
        with open(path, "w") as handle:
            handle.write(markdown_to_html(markdown, title))
        return "html"
    with open(path, "w") as handle:
        handle.write(markdown)
    return "markdown"
