"""Campaign-level progress: points done/in-flight/failed, and an ETA.

A long sweep is opaque from the outside — especially a parallel one,
where points complete out of order and a silent hour can mean either
"working hard" or "wedged".  :class:`CampaignProgress` is the campaign
runner's window out: the runner calls its four hooks (``begin``,
``point_started``, ``point_finished``, ``finish``) and the tracker
keeps the running tallies, per-point elapsed times, and a wall-clock
ETA estimate.

The tracker is deliberately passive and dependency-free: it never
touches the scheduler, and rendering is delegated to an ``emit``
callable (the CLI passes a stderr printer; library users can pass
``None`` and poll :meth:`snapshot` instead).  Any object exposing the
same four hooks can stand in for it — the runner duck-types the
protocol rather than importing this module.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional, Set

__all__ = ["CampaignProgress"]


class CampaignProgress:
    """Tracks and (optionally) narrates one campaign's progress.

    ``emit`` is called with one formatted line after every terminal
    point and once at campaign end; ``clock`` is injectable for tests.
    """

    def __init__(
        self,
        emit: Optional[Callable[[str], None]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self._emit = emit
        self._clock = clock
        self.total = 0
        self.workers = 1
        self.done = 0
        self.failed = 0
        self.poisoned = 0
        self.resumed = 0
        self.in_flight: Set[str] = set()
        #: ``run_id`` -> elapsed seconds of every finished point.
        self.elapsed: Dict[str, float] = {}
        self._executed_times: List[float] = []
        self._started_at = clock()

    # -- runner hooks --------------------------------------------------

    def begin(self, total: int, workers: int = 1) -> None:
        """A campaign of ``total`` points starts on ``workers`` workers."""
        self.total = total
        self.workers = max(1, workers)
        self.done = self.failed = self.poisoned = self.resumed = 0
        self.in_flight = set()
        self.elapsed = {}
        self._executed_times = []
        self._started_at = self._clock()

    def point_started(self, run_id: str) -> None:
        """``run_id``'s first attempt was dispatched to a worker."""
        self.in_flight.add(run_id)

    def point_finished(self, outcome: Any) -> None:
        """``outcome`` (a :class:`~repro.runner.RunOutcome`) is terminal."""
        self.in_flight.discard(outcome.run_id)
        self.done += 1
        self.elapsed[outcome.run_id] = outcome.elapsed_seconds
        if not outcome.ok:
            self.failed += 1
            # Poisoned points (their worker kept dying) are a subset of
            # failed — surfaced separately so a sweep's operator can
            # tell "bad spec" from "bad environment" at a glance.
            if getattr(outcome, "status", None) == "poisoned":
                self.poisoned += 1
        if outcome.resumed:
            self.resumed += 1
        else:
            self._executed_times.append(outcome.elapsed_seconds)
        if self._emit is not None:
            self._emit(self.line(outcome))

    def finish(self, status: str = "complete") -> None:
        """The campaign ended with ``status``."""
        if self._emit is not None:
            wall = self._clock() - self._started_at
            poisoned = (
                f" ({self.poisoned} poisoned)" if self.poisoned else ""
            )
            self._emit(
                f"campaign {status}: {self.done - self.failed} ok, "
                f"{self.failed} failed{poisoned}, {self.resumed} resumed "
                f"from checkpoint in {wall:.1f}s"
            )

    # -- derived views -------------------------------------------------

    @property
    def remaining(self) -> int:
        """Points not yet terminal (in flight or not started)."""
        return max(0, self.total - self.done)

    def eta_seconds(self) -> Optional[float]:
        """Rough wall-clock estimate for the remaining points.

        Average executed per-point time, scaled by remaining work spread
        across the workers.  None until one point has actually executed
        (resumed points are free and excluded from the average).
        """
        if not self._executed_times or not self.remaining:
            return None
        average = sum(self._executed_times) / len(self._executed_times)
        return average * self.remaining / self.workers

    def line(self, outcome: Optional[Any] = None) -> str:
        """One human-readable progress line, optionally for ``outcome``."""
        parts = [f"[{self.done}/{self.total}]"]
        if outcome is not None:
            if outcome.ok:
                status = "ok"
            elif getattr(outcome, "status", None) == "poisoned":
                status = f"POISONED ({outcome.error_kind})"
            else:
                status = f"FAILED ({outcome.error_kind})"
            if outcome.resumed:
                status += " (resumed)"
            parts.append(
                f"{outcome.run_id}: {status} in "
                f"{outcome.elapsed_seconds:.1f}s |"
            )
        parts.append(
            f"{self.failed} failed, {len(self.in_flight)} in flight"
        )
        eta = self.eta_seconds()
        if eta is not None:
            parts.append(f"| eta ~{eta:.0f}s")
        return " ".join(parts)

    def snapshot(self) -> Dict[str, Any]:
        """The current tallies as one JSON-able dict."""
        return {
            "total": self.total,
            "done": self.done,
            "failed": self.failed,
            "poisoned": self.poisoned,
            "resumed": self.resumed,
            "in_flight": sorted(self.in_flight),
            "remaining": self.remaining,
            "eta_seconds": self.eta_seconds(),
            "elapsed": dict(self.elapsed),
        }

    def __repr__(self) -> str:
        return (
            f"CampaignProgress(done={self.done}/{self.total}, "
            f"failed={self.failed}, in_flight={len(self.in_flight)})"
        )
