"""Ring-buffered structured event tracing.

An :class:`EventTrace` records *discrete* simulator events — stream
allocations, prefetch issue/fill/hit, priority bumps and agings, demand
misses, invariant-checker sweeps — as small dicts in a bounded ring
buffer.  It complements the metrics registry: metrics answer "how much,
over time", the trace answers "what exactly happened around cycle X".

Components hold an optional trace reference (``None`` when tracing is
off) and guard every emission site with one ``is not None`` check plus
a :meth:`EventTrace.wants` category test, so the disabled path costs a
single attribute load per candidate event and the filtered path skips
building the event dict entirely.

The buffer is a ``collections.deque(maxlen=capacity)``: once full, the
oldest events fall off.  :meth:`EventTrace.write_jsonl` dumps whatever
the ring currently holds as JSON Lines, one event per line, suitable
for ``jq``/pandas post-processing; :func:`read_jsonl` loads such a file
back.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import ConfigError

#: Every event category the simulator emits.  ``alloc``: stream-buffer
#: allocation decisions; ``prefetch``: issue/fill/hit/drop lifecycle;
#: ``priority``: counter bumps and agings; ``demand``: demand L1 misses;
#: ``integrity``: invariant-checker sweeps; ``pool``: shared entry-pool
#: steals under a pooled buffer-sharing policy.
CATEGORIES = ("alloc", "prefetch", "priority", "demand", "integrity", "pool")

#: Default ring capacity: large enough to hold every event of a typical
#: 50k-instruction run, small enough to stay out of memory trouble.
DEFAULT_CAPACITY = 65_536


class EventTrace:
    """A bounded, category-filtered log of structured simulator events."""

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        categories: Optional[Iterable[str]] = None,
    ) -> None:
        if capacity <= 0:
            raise ConfigError(
                f"EventTrace.capacity: must be positive, got {capacity}",
                field="EventTrace.capacity",
            )
        wanted = frozenset(categories) if categories is not None else frozenset(
            CATEGORIES
        )
        unknown = wanted - frozenset(CATEGORIES)
        if unknown:
            raise ConfigError(
                f"EventTrace.categories: unknown {sorted(unknown)}; "
                f"known: {', '.join(CATEGORIES)}",
                field="EventTrace.categories",
            )
        self.capacity = capacity
        self.categories = wanted
        self._events: deque = deque(maxlen=capacity)
        #: Total emissions accepted, including any that have since
        #: fallen off the ring — so reports can state the loss honestly.
        self.emitted = 0

    def wants(self, category: str) -> bool:
        """True when events of ``category`` pass the filter.

        Emission sites call this *before* assembling event fields so a
        filtered-out category costs one set lookup, nothing more.
        """
        return category in self.categories

    def emit(self, cycle: int, category: str, event: str, **fields: Any) -> None:
        """Record one event (silently dropped if its category is filtered)."""
        if category not in self.categories:
            return
        record: Dict[str, Any] = {
            "cycle": cycle,
            "category": category,
            "event": event,
        }
        if fields:
            record.update(fields)
        self._events.append(record)
        self.emitted += 1

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """Events lost to ring overflow (emitted but no longer held)."""
        return self.emitted - len(self._events)

    def events(self, category: Optional[str] = None) -> List[Dict[str, Any]]:
        """The buffered events, oldest first, optionally one category."""
        if category is None:
            return list(self._events)
        return [e for e in self._events if e["category"] == category]

    def counts(self) -> Dict[str, int]:
        """Buffered event count per ``category/event`` key."""
        tally: Counter = Counter(
            f"{e['category']}/{e['event']}" for e in self._events
        )
        return dict(sorted(tally.items()))

    def clear(self) -> None:
        """Drop all buffered events and reset the emission counter."""
        self._events.clear()
        self.emitted = 0

    # -- persistence ---------------------------------------------------

    def write_jsonl(self, path: str) -> int:
        """Write the buffered events to ``path`` as JSON Lines.

        Returns the number of events written.
        """
        with open(path, "w") as handle:
            for event in self._events:
                handle.write(json.dumps(event, sort_keys=True))
                handle.write("\n")
        return len(self._events)

    # -- pickling ------------------------------------------------------
    # Like the metrics registry, a trace never rides a simulation
    # snapshot: the configuration survives, the buffered events do not,
    # so payload sizes stay independent of how long a run was observed.

    def __getstate__(self):
        return {"capacity": self.capacity, "categories": self.categories}

    def __setstate__(self, state):
        self.__init__(state["capacity"], state["categories"])

    def __repr__(self) -> str:
        return (
            f"EventTrace({len(self._events)}/{self.capacity} buffered, "
            f"{self.emitted} emitted, categories={sorted(self.categories)})"
        )


def read_jsonl(path: str) -> List[Dict[str, Any]]:
    """Load a JSONL event file written by :meth:`EventTrace.write_jsonl`."""
    events: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


def parse_categories(spec: Optional[str]) -> Optional[List[str]]:
    """Parse a CLI ``--trace-filter`` value (comma-separated categories).

    ``None`` or ``"all"`` selects every category.
    """
    if spec is None or spec.strip() in ("", "all"):
        return None
    return [part.strip() for part in spec.split(",") if part.strip()]
