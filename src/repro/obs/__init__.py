"""Observability: structured metrics, event tracing, and run reports.

``repro.obs`` makes per-component behaviour — stream-buffer hit rates,
predictor accuracy, bus occupancy, priority-counter dynamics — visible
*over time* instead of only as end-of-run aggregates.  Three pieces:

- :mod:`repro.obs.metrics` — a typed metrics registry.  The simulator's
  components are wired in *pull* style: probes read the counters each
  component already maintains, and the registry samples them every
  ``SimConfig.metrics_interval`` cycles at cycle boundaries the driver
  already stops at.  Hot paths carry no instrumentation, results are
  bit-identical with metrics on or off, and the disabled path is a
  shared no-op sink.
- :mod:`repro.obs.tracing` — a ring-buffered structured event log
  (allocations, prefetch issue/fill/hit, priority bumps/agings, demand
  misses, invariant sweeps) with category filters and JSONL output.
- :mod:`repro.obs.report` — renders one run's metrics payload, or a
  whole campaign directory, into a self-contained markdown or HTML
  report reproducing the paper's figure shapes.

:class:`Observability` bundles a registry and an optional trace for one
:class:`~repro.sim.simulator.Simulator`; :func:`build_observability` and
:func:`wire_simulator` are the only integration points the simulator
needs.
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from repro.obs.metrics import (
    MISS_LATENCY_BOUNDS,
    NULL_REGISTRY,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricsRegistry,
)
from repro.obs.progress import CampaignProgress
from repro.obs.tracing import CATEGORIES, EventTrace, parse_categories, read_jsonl

__all__ = [
    "CATEGORIES",
    "CampaignProgress",
    "CounterMetric",
    "EventTrace",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "Observability",
    "build_observability",
    "parse_categories",
    "read_jsonl",
    "wire_simulator",
]


class Observability:
    """The metrics registry and event trace attached to one simulator.

    A default-constructed context is fully off: the registry is the
    shared :data:`~repro.obs.metrics.NULL_REGISTRY` and the trace is
    ``None``, so holding one costs nothing.
    """

    __slots__ = ("metrics", "trace", "sample_interval")

    def __init__(
        self,
        metrics: MetricsRegistry = NULL_REGISTRY,
        trace: Optional[EventTrace] = None,
        sample_interval: Optional[int] = None,
    ) -> None:
        self.metrics = metrics
        self.trace = trace
        self.sample_interval = sample_interval

    @property
    def metrics_enabled(self) -> bool:
        """True when periodic sampling should run."""
        return self.metrics.enabled and self.sample_interval is not None

    @property
    def active(self) -> bool:
        """True when any observation (metrics or tracing) is on."""
        return self.metrics.enabled or self.trace is not None

    def bind_run(self, state: Any) -> None:
        """(Re-)register the run-scoped core-progress probes.

        ``state`` is the core's ``_RunState``; its fields are synced at
        every ``advance`` boundary, which is exactly when sampling
        happens.  Re-binding on every run (including snapshot resumes)
        simply replaces the probes.
        """
        if not self.metrics_enabled:
            return
        metrics = self.metrics
        for name, read in state.observable_state().items():
            metrics.probe("core", name, read)

    # -- pickling ------------------------------------------------------
    # Rides simulator snapshots as a disabled context (see the metrics
    # and tracing modules for the rationale).

    def __getstate__(self):
        return {}

    def __setstate__(self, state):
        self.metrics = NULL_REGISTRY
        self.trace = None
        self.sample_interval = None

    def __repr__(self) -> str:
        return (
            f"Observability(metrics={self.metrics!r}, trace={self.trace!r}, "
            f"interval={self.sample_interval})"
        )


def build_observability(
    config: Any, trace: Optional[EventTrace] = None
) -> Observability:
    """Build the context ``config`` (a ``SimConfig``) asks for.

    Metrics sampling turns on when ``config.metrics_interval`` is set;
    ``trace`` attaches event tracing independently of metrics.
    """
    interval = getattr(config, "metrics_interval", None)
    if interval is None and trace is None:
        return Observability()
    registry = MetricsRegistry() if interval is not None else NULL_REGISTRY
    return Observability(registry, trace, interval)


def wire_simulator(obs: Observability, simulator: Any) -> None:
    """Attach ``obs`` to a simulator's components.

    Hands the event trace to the hierarchy and prefetch controller (they
    emit through it), creates the one push-style instrument (the demand
    miss-latency histogram), and registers pull probes over every
    counter the components already keep: core, L1/L2 caches, both buses,
    both MSHR files, the TLB, the controller, the predictor, the
    scheduler, and each individual stream buffer.
    """
    if not obs.active:
        return
    hierarchy = simulator.hierarchy
    controller = simulator.controller
    if obs.trace is not None:
        hierarchy.obs_trace = obs.trace
        if controller is not None:
            controller.obs_trace = obs.trace
    if not obs.metrics.enabled:
        return
    metrics = obs.metrics
    hierarchy.obs_latency_hist = metrics.histogram(
        "hierarchy", "miss_latency", MISS_LATENCY_BOUNDS
    )
    _wire_hierarchy(metrics, hierarchy)
    if controller is not None:
        _wire_prefetcher(metrics, controller)


def _probe_attrs(
    metrics: MetricsRegistry, component: str, obj: Any, names
) -> None:
    """Register one attribute-reading probe per counter in ``names``."""
    for name in names:
        if hasattr(obj, name):
            metrics.probe(
                component, name, lambda o=obj, n=name: float(getattr(o, n))
            )


def _wire_hierarchy(metrics: MetricsRegistry, hierarchy: Any) -> None:
    """Probes over the memory hierarchy's existing statistics."""
    _probe_attrs(
        metrics, "hierarchy", hierarchy,
        (
            "demand_accesses", "demand_misses", "sb_hits", "sb_pending_hits",
            "prefetches_issued", "prefetches_redundant",
            "demand_l2_fetches", "demand_mem_fetches",
        ),
    )
    _probe_attrs(metrics, "l1", hierarchy.l1, ("accesses", "hits", "misses"))
    _probe_attrs(metrics, "l2", hierarchy.l2, ("accesses", "hits", "misses"))
    for name, bus in (
        ("bus_l1_l2", hierarchy.l1_l2_bus),
        ("bus_l2_mem", hierarchy.l2_mem_bus),
    ):
        _probe_attrs(metrics, name, bus, ("busy_cycles", "transactions"))
    for name, mshr in (
        ("mshr_l1", hierarchy.l1_mshr),
        ("mshr_l2", hierarchy.l2_mshr),
    ):
        _probe_attrs(
            metrics, name, mshr,
            ("allocations", "releases", "merges", "full_stalls"),
        )
        metrics.probe(name, "occupancy", lambda m=mshr: float(len(m)))
    _probe_attrs(metrics, "tlb", hierarchy.tlb, ("hits", "misses"))


def _wire_prefetcher(metrics: MetricsRegistry, controller: Any) -> None:
    """Probes over the prefetch controller, predictor, scheduler, and
    each stream buffer (when the architecture has them)."""
    _probe_attrs(
        metrics, "prefetcher", controller,
        (
            "prefetches_issued", "prefetches_used", "prefetches_discarded",
            "predictions_made", "duplicate_predictions", "allocations",
            "allocations_denied", "predicted_overtaken",
        ),
    )
    if hasattr(controller, "accuracy"):
        metrics.probe(
            "prefetcher", "accuracy", lambda c=controller: float(c.accuracy)
        )
    predictor = getattr(controller, "predictor", None)
    if predictor is not None:
        _probe_attrs(
            metrics, "predictor", predictor, ("trains", "correct_trains")
        )
        if hasattr(predictor, "accuracy"):
            metrics.probe(
                "predictor", "accuracy", lambda p=predictor: float(p.accuracy)
            )
    scheduler = getattr(controller, "scheduler", None)
    if scheduler is not None:
        _probe_attrs(
            metrics, "scheduler", scheduler,
            ("prediction_grants", "prefetch_grants"),
        )
    pool = getattr(controller, "pool", None)
    if pool is not None:
        metrics.probe("pool", "allocated", lambda p=pool: float(p.allocated))
        _probe_attrs(
            metrics, "pool", pool,
            ("acquires", "steals", "denials", "releases", "evicted_inflight"),
        )
    for buffer in getattr(controller, "buffers", ()):
        component = f"sb{buffer.index}"
        metrics.probe(
            component, "priority", lambda b=buffer: float(int(b.priority))
        )
        _probe_attrs(
            metrics, component, buffer, ("hits", "allocations")
        )
        metrics.probe(
            component, "occupied_entries",
            lambda b=buffer: float(b.occupied_entries),
        )


def metrics_payload(
    simulator: Any, result: Any, meta: Optional[Dict[str, Any]] = None
) -> Dict[str, Any]:
    """Assemble the JSON-able artifact ``repro-sim run --metrics`` writes.

    Bundles run metadata, the aggregate :class:`SimulationResult`, and
    the registry's time series into one self-describing document that
    :mod:`repro.obs.report` (and ``repro-sim report``) consumes.
    """
    import dataclasses

    from repro.workloads.cache import cache_stats

    payload: Dict[str, Any] = {
        "format": "repro-obs-metrics-v1",
        "interval": simulator.obs.sample_interval,
        "meta": dict(meta or {}),
        "result": dataclasses.asdict(result),
        # Compiled-trace cache health: ``corrupt_recompiled`` > 0 means
        # checksum validation caught (and healed) damaged cache entries.
        "trace_cache": cache_stats(),
    }
    payload.update(simulator.obs.metrics.to_payload())
    return payload
