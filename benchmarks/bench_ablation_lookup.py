"""Ablation G (Section 3.3.2): the Farkas stream-buffer enhancements.

Two of Farkas et al.'s enhancements are baked into the paper's model:
fully associative stream-buffer lookup (vs. Jouppi's FIFO-head-only
probing) and the non-overlapping-streams guarantee.  This bench turns
each off under the ConfAlloc-Priority PSB to show both carry weight:

- FIFO lookup collapses on a chase whose hits arrive slightly out of
  order (any skipped entry kills the rest of the buffer's contents);
- allowing overlap lets multiple buffers prefetch the same blocks,
  wasting bus bandwidth.
"""

from _shared import MAX_INSTRUCTIONS, SEED, WARMUP_INSTRUCTIONS, run

from dataclasses import replace

from repro.analysis.report import ascii_table
from repro.sim import psb_config, simulate
from repro.workloads import get_workload

_PROGRAMS = ("health", "gs")
_VARIANTS = {
    "paper (assoc+no-overlap)": {},
    "FIFO lookup": {"associative_lookup": False},
    "overlap allowed": {"check_overlap": False},
}


def _variant_config(overrides):
    config = psb_config()
    stream_buffers = replace(config.prefetch.stream_buffers, **overrides)
    return config.with_prefetcher(
        replace(config.prefetch, stream_buffers=stream_buffers)
    )


def test_ablation_lookup_and_overlap(benchmark):
    def experiment():
        table = {}
        for name in _PROGRAMS:
            base = run(name, "Base")
            table[name] = {}
            for label, overrides in _VARIANTS.items():
                if not overrides:
                    result = run(name, "ConfAlloc-Priority")
                else:
                    result = simulate(
                        _variant_config(overrides),
                        get_workload(name, seed=SEED),
                        max_instructions=MAX_INSTRUCTIONS,
                        warmup_instructions=WARMUP_INSTRUCTIONS,
                        label=f"{name}/{label}",
                    )
                table[name][label] = (
                    result.speedup_over(base),
                    result.l1_l2_bus_utilization,
                )
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name in _PROGRAMS:
        rows.append(
            [name]
            + [
                f"{table[name][label][0]:+.1f}%/{table[name][label][1] * 100:.0f}%"
                for label in _VARIANTS
            ]
        )
    print()
    print(
        ascii_table(
            ["program"] + list(_VARIANTS),
            rows,
            title=(
                "Ablation G: Farkas enhancements (speedup / L1-L2 bus busy)"
            ),
        )
    )
    print(
        "Expectation: FIFO lookup loses much of the benefit; allowing "
        "overlapping streams wastes bandwidth without gaining speed."
    )
    for name in _PROGRAMS:
        paper_point = table[name]["paper (assoc+no-overlap)"][0]
        assert table[name]["FIFO lookup"][0] <= paper_point + 2.0, name
        assert table[name]["overlap allowed"][0] <= paper_point + 5.0, name
