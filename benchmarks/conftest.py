"""Benchmark-harness configuration.

Each benchmark is one full experiment (many simulations), so timing
repetition is disabled: ``benchmark.pedantic(..., rounds=1)`` everywhere.
"""

import os
import sys

sys.path.insert(0, os.path.dirname(__file__))
