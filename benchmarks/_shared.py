"""Shared machinery for the benchmark harness.

Figures 5-9 and Table 2 all report on the same 36 simulations (six
workloads x six machine configurations), so results are computed once
per pytest session and cached here.  Every benchmark prints the rows or
series of the table/figure it reproduces, alongside the paper's
qualitative expectation, so the comparison lives in the output.

Run lengths are scaled for the Python substrate (the paper simulated
tens of millions of Alpha instructions per benchmark); EXPERIMENTS.md
records the paper-vs-measured comparison.
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.config import SimConfig
from repro.runner import CampaignRunner, RunSpec, WorkloadSpec
from repro.sim import SimulationResult, baseline_config, paper_configs
from repro.workloads import workload_names

#: Instructions simulated per run (after warm-up) and warm-up length.
MAX_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", 60_000))
WARMUP_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_WARMUP", 25_000))
SEED = int(os.environ.get("REPRO_BENCH_SEED", 1))

#: Resilience policy for benchmark runs.  Defaults preserve the classic
#: behaviour (inline, fail-fast, no timeout); long unattended campaigns
#: can opt into isolation and retries without touching the benchmarks.
TIMEOUT: Optional[float] = (
    float(os.environ["REPRO_BENCH_TIMEOUT"])
    if os.environ.get("REPRO_BENCH_TIMEOUT")
    else None
)
RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", 0))
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", 1))
ISOLATION = os.environ.get(
    "REPRO_BENCH_ISOLATION",
    "process" if (TIMEOUT is not None or WORKERS > 1) else "inline",
)

_runner = CampaignRunner(
    timeout=TIMEOUT, retries=RETRIES, isolation=ISOLATION,
    workers=WORKERS, on_error="fail",
)

#: Pointer-intensive benchmarks (the paper's averages exclude turb3d).
POINTER_PROGRAMS = ("health", "burg", "deltablue", "gs", "sis")

#: Configuration labels in figure order, Base first.
CONFIG_LABELS = ("Base", "Stride", "2Miss-RR", "2Miss-Priority",
                 "ConfAlloc-RR", "ConfAlloc-Priority")

_cache: Dict[Tuple[str, str], SimulationResult] = {}


def configs_by_label() -> Dict[str, SimConfig]:
    labelled = {"Base": baseline_config()}
    labelled.update(paper_configs())
    return labelled


def run(workload: str, label: str) -> SimulationResult:
    """One cached simulation of ``workload`` under configuration ``label``."""
    return run_custom(workload, label, configs_by_label()[label])


def run_matrix() -> Dict[Tuple[str, str], SimulationResult]:
    """All 36 runs of the main evaluation (Figures 5-9, Table 2).

    With ``REPRO_BENCH_WORKERS > 1`` the not-yet-cached cells run as
    one parallel campaign instead of one ``run_one`` at a time — same
    per-cell results (the runner's parallel schedule is result-
    identical), filled into the same cache.
    """
    labelled = configs_by_label()
    missing = [
        (workload, label)
        for workload in workload_names()
        for label in CONFIG_LABELS
        if (workload, label) not in _cache
    ]
    if WORKERS > 1 and len(missing) > 1:
        specs = [
            RunSpec(
                run_id=f"{workload}/{label}",
                config=labelled[label],
                trace=WorkloadSpec(workload, seed=SEED),
                max_instructions=MAX_INSTRUCTIONS,
                warmup_instructions=WARMUP_INSTRUCTIONS,
            )
            for workload, label in missing
        ]
        campaign = _runner.run(specs)
        for (workload, label), spec in zip(missing, specs):
            _cache[(workload, label)] = campaign.results[spec.run_id]
    else:
        for workload, label in missing:
            run(workload, label)
    return dict(_cache)


def run_custom(workload: str, label: str, config: SimConfig) -> SimulationResult:
    """A cached run under an ad-hoc configuration (sweeps)."""
    key = (workload, label)
    if key not in _cache:
        spec = RunSpec(
            run_id=f"{workload}/{label}",
            config=config,
            trace=WorkloadSpec(workload, seed=SEED),
            max_instructions=MAX_INSTRUCTIONS,
            warmup_instructions=WARMUP_INSTRUCTIONS,
        )
        _cache[key] = _runner.run_one(spec)
    return _cache[key]


def speedup(workload: str, label: str) -> float:
    """Percent speedup of ``label`` over Base for ``workload``."""
    return run(workload, label).speedup_over(run(workload, "Base"))
