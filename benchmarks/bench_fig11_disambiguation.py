"""Figure 11: IPC with and without perfect store sets.

The paper runs the baseline and the best PSB machine under both perfect
disambiguation (store sets) and no disambiguation.  Expected shape:
perfect store sets help the no-prefetch baseline (notably deltablue and
sis), but add little on top of prefetching for most programs — the
prefetcher has already removed the latency the extra ILP would hide.
"""

from _shared import run, run_custom

from repro.analysis.report import ascii_table
from repro.config import DisambiguationPolicy
from repro.sim import baseline_config, psb_config
from repro.workloads import workload_names

_POLICIES = {
    "Dis": DisambiguationPolicy.PERFECT_STORE_SETS,
    "NoDis": DisambiguationPolicy.NO_DISAMBIGUATION,
}


def test_fig11_perfect_disambiguation(benchmark):
    def experiment():
        ipcs = {}
        for name in workload_names():
            ipcs[name] = {}
            for policy_label, policy in _POLICIES.items():
                if policy == DisambiguationPolicy.PERFECT_STORE_SETS:
                    # Perfect store sets is the main evaluation machine:
                    # reuse those cached runs.
                    ipcs[name][f"Base-{policy_label}"] = run(name, "Base").ipc
                    ipcs[name][f"CAP-{policy_label}"] = run(
                        name, "ConfAlloc-Priority"
                    ).ipc
                    continue
                base = baseline_config().with_disambiguation(policy)
                psb = psb_config().with_disambiguation(policy)
                ipcs[name][f"Base-{policy_label}"] = run_custom(
                    name, f"Base-{policy_label}", base
                ).ipc
                ipcs[name][f"CAP-{policy_label}"] = run_custom(
                    name, f"CAP-{policy_label}", psb
                ).ipc
        return ipcs

    ipcs = benchmark.pedantic(experiment, rounds=1, iterations=1)
    columns = ["Base-NoDis", "Base-Dis", "CAP-NoDis", "CAP-Dis"]
    rows = [
        [name] + [f"{ipcs[name][column]:.3f}" for column in columns]
        for name in workload_names()
    ]
    print()
    print(
        ascii_table(
            ["program"] + columns,
            rows,
            title=(
                "Figure 11 (reproduced): IPC with (Dis) and without "
                "(NoDis) perfect store sets; CAP = ConfAlloc-Priority PSB"
            ),
        )
    )
    print(
        "Paper expectation: perfect store sets help the baseline; they "
        "add little on top of prefetching for most programs."
    )
    for name in workload_names():
        # Disambiguation never hurts.
        assert ipcs[name]["Base-Dis"] >= ipcs[name]["Base-NoDis"] - 0.02
        assert ipcs[name]["CAP-Dis"] >= ipcs[name]["CAP-NoDis"] - 0.02
        # Prefetching helps under either policy (pointer programs).
    for name in ("health", "deltablue"):
        assert ipcs[name]["CAP-Dis"] > ipcs[name]["Base-Dis"]
        assert ipcs[name]["CAP-NoDis"] > ipcs[name]["Base-NoDis"]
