"""Ablation B (Section 6): stride-table size beyond 256 entries.

"We examined using PC stride tables larger than 256 entry, but they
provided little to no improvement": because only *missing* loads enter
the table, 256 entries capture all the critical miss PCs.  This bench
sweeps the table size under the Stride machine on two programs with the
most static load sites.
"""

from _shared import MAX_INSTRUCTIONS, SEED, WARMUP_INSTRUCTIONS

from dataclasses import replace

from repro.analysis.report import ascii_table
from repro.config import StridePredictorConfig
from repro.sim import simulate, stride_config
from repro.workloads import get_workload

_SIZES = (64, 256, 1024)
_PROGRAMS = ("turb3d", "sis")


def test_ablation_stride_table_size(benchmark):
    def experiment():
        table = {}
        for name in _PROGRAMS:
            table[name] = {}
            for entries in _SIZES:
                config = stride_config()
                prefetch = replace(
                    config.prefetch,
                    stride=StridePredictorConfig(entries=entries),
                )
                config = config.with_prefetcher(prefetch)
                result = simulate(
                    config,
                    get_workload(name, seed=SEED),
                    max_instructions=MAX_INSTRUCTIONS,
                    warmup_instructions=WARMUP_INSTRUCTIONS,
                    label=f"{name}/stride-{entries}",
                )
                table[name][entries] = result.ipc
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name] + [f"{table[name][entries]:.3f}" for entries in _SIZES]
        for name in _PROGRAMS
    ]
    print()
    print(
        ascii_table(
            ["program"] + [f"{entries}-entry" for entries in _SIZES],
            rows,
            title=(
                "Ablation B (reproduced): Stride machine IPC vs "
                "PC-stride table size"
            ),
        )
    )
    print("Paper expectation: >256 entries provides little to no gain.")
    for name in _PROGRAMS:
        gain_from_big_table = table[name][1024] - table[name][256]
        assert gain_from_big_table < 0.08, name
