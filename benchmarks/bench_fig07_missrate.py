"""Figure 7: data-cache miss rates under each configuration.

The paper counts an access to any non-resident block as a miss — even
one whose data is in flight or waiting in a stream buffer — so the
prefetchers reduce the miss *rate* only through the blocks they moved
into the L1 ahead of reuse.  The interesting movement is therefore
modest, while the latency (Figure 8) moves a lot.
"""

from _shared import CONFIG_LABELS, run

from repro.analysis.report import ascii_table
from repro.workloads import workload_names


def test_fig07_miss_rates(benchmark):
    def experiment():
        return {
            name: {
                label: run(name, label).l1_miss_rate for label in CONFIG_LABELS
            }
            for name in workload_names()
        }

    rates = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name] + [f"{rates[name][label] * 100:.1f}" for label in CONFIG_LABELS]
        for name in workload_names()
    ]
    print()
    print(
        ascii_table(
            ["program"] + list(CONFIG_LABELS),
            rows,
            title=(
                "Figure 7 (reproduced): L1 data-cache miss rate (%), "
                "in-flight blocks count as misses"
            ),
        )
    )
    for name in workload_names():
        for label in CONFIG_LABELS:
            assert 0.0 <= rates[name][label] <= 1.0
        # Prefetching never makes the demand-miss accounting worse by
        # an implausible margin.
        assert (
            rates[name]["ConfAlloc-Priority"]
            <= rates[name]["Base"] + 0.05
        )
