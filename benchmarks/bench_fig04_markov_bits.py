"""Figure 4: bits needed by the differential Markov predictor.

The paper plots, per benchmark, the fraction of L1 cache misses whose
consecutive-miss delta is representable in N signed bits; 16 bits
captures almost all transitions, justifying the 4 KB (2K x 16-bit)
table.  This bench replays each workload's miss stream functionally and
prints the same curves.
"""

import itertools

from repro.analysis.markov_bits import markov_delta_bits
from repro.analysis.report import ascii_table
from repro.workloads import get_workload, workload_names

_INSTRUCTIONS = 80_000
_BIT_POINTS = (8, 10, 12, 14, 16, 20, 24, 32)


def test_fig04_markov_delta_bits(benchmark):
    def experiment():
        curves = {}
        for name in workload_names():
            trace = itertools.islice(get_workload(name), _INSTRUCTIONS)
            analysis = markov_delta_bits(trace, max_instructions=_INSTRUCTIONS)
            curves[name] = [analysis.coverage_at(bits) for bits in _BIT_POINTS]
        return curves

    curves = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name] + [f"{value * 100:.0f}%" for value in values]
        for name, values in curves.items()
    ]
    print()
    print(
        ascii_table(
            ["program"] + [f"{bits}b" for bits in _BIT_POINTS],
            rows,
            title=(
                "Figure 4 (reproduced): % of per-load miss transitions "
                "representable in N signed bits"
            ),
        )
    )
    print("Paper expectation: 16 bits captures almost all transitions.")
    sixteen = _BIT_POINTS.index(16)
    for name, values in curves.items():
        assert values[sixteen] > 0.7, f"{name}: 16-bit coverage too low"
        assert values == sorted(values)  # monotone in bit width
    # Pointer benchmarks must need MORE than trivially few bits.
    eight = _BIT_POINTS.index(8)
    assert curves["health"][eight] < curves["health"][sixteen]
