"""Ablation E: stream-buffer capacity (buffers x entries).

The paper fixes 8 stream buffers of 4 entries each.  This bench sweeps
both dimensions under the ConfAlloc-Priority PSB to show the design
point: the multi-stream workload (sis) needs the buffer *count*, the
serial chase (health) needs the entry *depth* for run-ahead, and
doubling past 8x4 buys little on either.
"""

from _shared import MAX_INSTRUCTIONS, SEED, WARMUP_INSTRUCTIONS, run

from dataclasses import replace

from repro.analysis.report import ascii_table
from repro.sim import psb_config, simulate
from repro.workloads import get_workload

_PROGRAMS = ("health", "sis")
_GEOMETRIES = ((2, 4), (8, 1), (8, 4), (8, 8), (16, 4))


def test_ablation_stream_buffer_capacity(benchmark):
    def experiment():
        table = {}
        for name in _PROGRAMS:
            base = run(name, "Base")
            table[name] = {}
            for buffers, entries in _GEOMETRIES:
                config = psb_config()
                stream_buffers = replace(
                    config.prefetch.stream_buffers,
                    num_buffers=buffers,
                    entries_per_buffer=entries,
                )
                prefetch = replace(
                    config.prefetch, stream_buffers=stream_buffers
                )
                result = simulate(
                    config.with_prefetcher(prefetch),
                    get_workload(name, seed=SEED),
                    max_instructions=MAX_INSTRUCTIONS,
                    warmup_instructions=WARMUP_INSTRUCTIONS,
                    label=f"{name}/{buffers}x{entries}",
                )
                table[name][(buffers, entries)] = result.speedup_over(base)
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name]
        + [f"{table[name][geometry]:+.1f}%" for geometry in _GEOMETRIES]
        for name in _PROGRAMS
    ]
    print()
    print(
        ascii_table(
            ["program"] + [f"{b}x{e}" for b, e in _GEOMETRIES],
            rows,
            title=(
                "Ablation E: ConfAlloc-Priority speedup vs stream-buffer "
                "geometry (buffers x entries)"
            ),
        )
    )
    print(
        "Expectation: performance saturates around the paper's 8x4 point."
    )
    for name in _PROGRAMS:
        paper_point = table[name][(8, 4)]
        doubled = max(table[name][(16, 4)], table[name][(8, 8)])
        # Doubling the hardware must not be transformative (well under
        # 2x the benefit for 2x the storage).
        assert doubled < paper_point * 1.5 + 10.0, name
    # Starved geometries hurt the chase workload.
    assert table["health"][(8, 1)] <= table["health"][(8, 4)] + 2.0
