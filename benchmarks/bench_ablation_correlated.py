"""Ablation F (Section 2.2): correlated prediction adds little here.

"We simulated higher order Markov predictors and the correlation
predictor [Bekerman et al.], but saw little to no improvement in
prediction accuracy and coverage over first order Markov ... partially
due to the fact that correlated loads lie within the same cache block."

This bench drives a PSB with the correlated base-address predictor and
compares it against the stock SFM PSB across the pointer workloads.
"""

from _shared import MAX_INSTRUCTIONS, SEED, WARMUP_INSTRUCTIONS, run

from repro.analysis.report import ascii_table
from repro.predictors.correlated import CorrelatedAddressPredictor
from repro.sim import psb_config
from repro.sim.simulator import Simulator
from repro.workloads import get_workload

_PROGRAMS = ("health", "burg", "deltablue")


def _run_correlated(name):
    simulator = Simulator(psb_config())
    simulator.controller.predictor = CorrelatedAddressPredictor()
    return simulator.run(
        get_workload(name, seed=SEED),
        max_instructions=MAX_INSTRUCTIONS,
        warmup_instructions=WARMUP_INSTRUCTIONS,
        label=f"{name}/correlated",
    )


def test_ablation_correlated_predictor(benchmark):
    def experiment():
        table = {}
        for name in _PROGRAMS:
            base = run(name, "Base")
            sfm = run(name, "ConfAlloc-Priority")
            correlated = _run_correlated(name)
            table[name] = {
                "SFM": (sfm.speedup_over(base), sfm.prefetch_accuracy),
                "Correlated": (
                    correlated.speedup_over(base),
                    correlated.prefetch_accuracy,
                ),
            }
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [
            name,
            f"{table[name]['SFM'][0]:+.1f}%/{table[name]['SFM'][1] * 100:.0f}%",
            (
                f"{table[name]['Correlated'][0]:+.1f}%/"
                f"{table[name]['Correlated'][1] * 100:.0f}%"
            ),
        ]
        for name in _PROGRAMS
    ]
    print()
    print(
        ascii_table(
            ["program", "SFM (speedup/acc)", "Correlated (speedup/acc)"],
            rows,
            title=(
                "Ablation F (reproduced): SFM vs correlated base-address "
                "prediction directing the PSB"
            ),
        )
    )
    print(
        "Paper expectation: the correlation predictor gives little to no "
        "improvement over the (stride-filtered first-order) Markov."
    )
    for name in _PROGRAMS:
        assert (
            table[name]["Correlated"][0] < table[name]["SFM"][0] + 10.0
        ), name
