"""Figure 8: average load latency in cycles.

The paper reports PSB removing about 4 cycles of average load latency
for deltablue and 3 for burg; the expected shape is that the PSB
variants sit below both the baseline and the stride stream buffers on
pointer programs.
"""

from _shared import CONFIG_LABELS, run

from repro.analysis.report import ascii_table
from repro.workloads import workload_names


def test_fig08_average_load_latency(benchmark):
    def experiment():
        return {
            name: {
                label: run(name, label).avg_load_latency
                for label in CONFIG_LABELS
            }
            for name in workload_names()
        }

    latency = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name] + [f"{latency[name][label]:.2f}" for label in CONFIG_LABELS]
        for name in workload_names()
    ]
    print()
    print(
        ascii_table(
            ["program"] + list(CONFIG_LABELS),
            rows,
            title="Figure 8 (reproduced): average load latency (cycles)",
        )
    )
    print(
        "Paper expectation: PSB removes multiple cycles of average load "
        "latency for deltablue and burg."
    )
    for name in ("health", "deltablue"):
        assert (
            latency[name]["ConfAlloc-Priority"] < latency[name]["Base"]
        ), name
    # health's critical path is the chase: PSB beats stride outright.
    assert latency["health"]["ConfAlloc-Priority"] < latency["health"]["Stride"]
    # deltablue: at least one full cycle removed (paper: ~4).  (The mean
    # can sit above Stride's: PSB's extra traffic queues the independent
    # scan loads while shortening the critical-path chase loads — the IPC
    # in Figure 5 shows which effect wins.)
    assert latency["deltablue"]["Base"] - latency["deltablue"][
        "ConfAlloc-Priority"
    ] > 1.0
