"""Figure 10: speedup across L1 data-cache geometries.

The paper shows the prefetching speedups for a 16K 4-way, 32K 2-way and
32K 4-way L1: "the speedup obtained is independent of cache size over a
reasonable set of configurations", because the benefit comes from hiding
L1 *capacity* misses that persist at all three sizes.
"""

from _shared import run, run_custom

from repro.analysis.report import ascii_table
from repro.sim import baseline_config, psb_config, stride_config
from repro.sim.sweep import FIGURE10_CACHES
from repro.workloads import workload_names

_CONFIG_MAKERS = {
    "Base": baseline_config,
    "Stride": stride_config,
    "ConfAlloc-Priority": psb_config,
}


def test_fig10_cache_size_sweep(benchmark):
    def experiment():
        speedups = {}
        for name in workload_names():
            speedups[name] = {}
            for size, ways, geometry in FIGURE10_CACHES:
                results = {}
                default_geometry = (size, ways) == (32 * 1024, 4)
                for label, maker in _CONFIG_MAKERS.items():
                    if default_geometry:
                        # The 32K 4-way geometry is the main evaluation
                        # machine: reuse those cached runs.
                        results[label] = run(name, label)
                        continue
                    config = maker().with_l1(size, ways)
                    results[label] = run_custom(
                        name, f"{label}@{geometry}", config
                    )
                base = results["Base"]
                speedups[name][geometry] = {
                    label: results[label].speedup_over(base)
                    for label in ("Stride", "ConfAlloc-Priority")
                }
        return speedups

    speedups = benchmark.pedantic(experiment, rounds=1, iterations=1)
    geometries = [geometry for __, __, geometry in FIGURE10_CACHES]
    rows = []
    for name in workload_names():
        for label in ("Stride", "ConfAlloc-Priority"):
            rows.append(
                [name, label]
                + [f"{speedups[name][g][label]:+.1f}%" for g in geometries]
            )
    print()
    print(
        ascii_table(
            ["program", "prefetcher"] + geometries,
            rows,
            title="Figure 10 (reproduced): % speedup vs L1 geometry",
        )
    )
    print(
        "Paper expectation: the speedups are roughly independent of the "
        "cache configuration."
    )
    # The PSB speedup must not evaporate at any geometry for the programs
    # it helps at the default geometry.
    for name in ("health", "deltablue"):
        gains = [
            speedups[name][g]["ConfAlloc-Priority"] for g in geometries
        ]
        assert min(gains) > 10.0, (name, gains)
