"""Ablation A (Sections 2.2/4.2): higher-order Markov gives little.

The paper simulated higher-order Markov/context predictors and saw
"little to no improvement in prediction accuracy and coverage over first
order" for these programs.  This bench replays each workload's L1 miss
stream through order-1..3 context predictors and compares accuracy.
"""

import itertools

from repro.analysis.report import ascii_table
from repro.config import CacheConfig
from repro.memory.cache import SetAssociativeCache
from repro.workloads import get_workload, workload_names

_INSTRUCTIONS = 60_000
_ORDERS = (1, 2, 3)


def _miss_stream(name):
    """(pc, block) pairs for every L1 load miss, functionally simulated."""
    cache = SetAssociativeCache(
        CacheConfig(
            name="L1D", size_bytes=32 * 1024, associativity=4, block_size=32,
            hit_latency=1,
        )
    )
    for record in itertools.islice(get_workload(name), _INSTRUCTIONS):
        if not record.is_memory:
            continue
        if cache.access(record.addr, is_store=record.is_store):
            continue
        block = cache.align(record.addr)
        cache.insert(block)
        if record.is_load:
            yield record.pc, block


def _per_load_order_accuracy(misses, order):
    """Accuracy of an order-k predictor over *per-load* miss histories.

    This matches the paper's setting: the SFM Markov table is trained on
    each load's own miss sequence (the stride table holds the per-PC last
    address), so the order-k comparison must use per-PC contexts too.
    The table here is unbounded — an idealization that *favours* higher
    orders, making "little improvement" a conservative conclusion.
    """
    from collections import deque

    table = {}
    histories = {}
    correct = 0
    total = 0
    for pc, block in misses:
        history = histories.setdefault(pc, deque(maxlen=order))
        if len(history) == order:
            context = (pc,) + tuple(history)
            total += 1
            if table.get(context) == block:
                correct += 1
            table[context] = block
        history.append(block)
    return correct / total if total else 0.0


def test_ablation_markov_order(benchmark):
    def experiment():
        table = {}
        for name in workload_names():
            misses = list(_miss_stream(name))
            table[name] = {
                order: _per_load_order_accuracy(misses, order)
                for order in _ORDERS
            }
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name] + [f"{table[name][order] * 100:.1f}%" for order in _ORDERS]
        for name in workload_names()
    ]
    print()
    print(
        ascii_table(
            ["program"] + [f"order-{order}" for order in _ORDERS],
            rows,
            title=(
                "Ablation A (reproduced): context-predictor accuracy on "
                "the L1 miss stream vs order"
            ),
        )
    )
    print(
        "Paper expectation: little to no improvement beyond first order."
    )
    for name in workload_names():
        best_higher = max(table[name][2], table[name][3])
        # Higher order never dominates dramatically (and an unbounded
        # table already favours it).
        assert best_higher < table[name][1] + 0.15, name
