"""Table 1: benchmark descriptions and behavioural traits.

The paper's Table 1 describes the six programs.  This bench verifies the
stand-ins expose the *traits* those descriptions promise — pointer
chasing for the Olden/C++ codes, stride dominance for the FORTRAN code —
and prints a Table 1-shaped summary.
"""

import itertools

from repro.analysis.report import ascii_table
from repro.trace.stream import profile
from repro.workloads import WORKLOADS, get_workload

_PROFILE_INSTRUCTIONS = 20_000


def _stride_fraction(name: str) -> float:
    last = {}
    strides = {}
    repeated = 0
    total = 0
    for record in itertools.islice(get_workload(name), _PROFILE_INSTRUCTIONS):
        if not record.is_load:
            continue
        if record.pc in last:
            stride = record.addr - last[record.pc]
            if strides.get(record.pc) == stride:
                repeated += 1
            total += 1
            strides[record.pc] = stride
        last[record.pc] = record.addr
    return repeated / total if total else 0.0


def test_table1_workload_traits(benchmark):
    def experiment():
        rows = []
        for name, cls in WORKLOADS.items():
            mix = profile(itertools.islice(get_workload(name), _PROFILE_INSTRUCTIONS))
            rows.append(
                [
                    name,
                    f"{mix['load_fraction'] * 100:.0f}%",
                    f"{mix['store_fraction'] * 100:.0f}%",
                    f"{_stride_fraction(name) * 100:.0f}%",
                    cls.description[:48] + "...",
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    print()
    print(
        ascii_table(
            ["program", "%lds", "%sts", "stride-ld%", "description"],
            rows,
            title="Table 1 (reproduced): benchmark stand-ins",
        )
    )
    traits = {row[0]: float(row[3].rstrip("%")) for row in rows}
    # turb3d is the stride-dominated FORTRAN program; health is not.
    assert traits["turb3d"] > 80.0
    assert traits["health"] < 40.0
