"""Table 2: baseline characterization (no prefetching).

The paper's Table 2 reports, per program: instructions simulated, L1
data-cache miss rate, %loads, %stores, IPC, and the busy fraction of the
L1-L2 and L2-memory buses.  This bench regenerates those rows on the
baseline machine.
"""

from _shared import MAX_INSTRUCTIONS, WARMUP_INSTRUCTIONS, run

from repro.analysis.report import ascii_table
from repro.workloads import workload_names


def test_table2_baseline(benchmark):
    def experiment():
        return {name: run(name, "Base") for name in workload_names()}

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name, result in results.items():
        rows.append(
            [
                name,
                f"{result.instructions}",
                f"{result.l1_miss_rate * 100:.1f}",
                f"{result.load_fraction * 100:.1f}",
                f"{result.store_fraction * 100:.1f}",
                f"{result.ipc:.2f}",
                f"{result.l1_l2_bus_utilization * 100:.1f}",
                f"{result.l2_mem_bus_utilization * 100:.1f}",
            ]
        )
    print()
    print(
        ascii_table(
            ["program", "#inst", "%L1 MR", "%lds", "%sts", "IPC",
             "L1-L2 %bus", "L2-M %bus"],
            rows,
            title=(
                "Table 2 (reproduced): baseline machine, "
                f"{MAX_INSTRUCTIONS - WARMUP_INSTRUCTIONS} measured "
                f"instructions after {WARMUP_INSTRUCTIONS} warm-up"
            ),
        )
    )
    for name, result in results.items():
        assert 0.0 < result.ipc < 8.0
        assert 0.0 < result.l1_miss_rate < 1.0
        assert 0.0 <= result.l1_l2_bus_utilization <= 1.0
