"""Figure 9: L1-L2 and L2-memory bus utilization.

Expected shape: prefetching raises L1-L2 traffic everywhere (that is the
price of running ahead); on sis, configurations *without* confidence
waste a large factor more bus bandwidth on useless prefetches than the
confidence-guided configuration.
"""

from _shared import CONFIG_LABELS, run

from repro.analysis.report import ascii_table
from repro.workloads import workload_names


def test_fig09_bus_utilization(benchmark):
    def experiment():
        table = {}
        for name in workload_names():
            table[name] = {
                label: (
                    run(name, label).l1_l2_bus_utilization,
                    run(name, label).l2_mem_bus_utilization,
                )
                for label in CONFIG_LABELS
            }
        return table

    util = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name in workload_names():
        rows.append(
            [name]
            + [
                f"{util[name][label][0] * 100:.0f}/{util[name][label][1] * 100:.0f}"
                for label in CONFIG_LABELS
            ]
        )
    print()
    print(
        ascii_table(
            ["program"] + [f"{label}" for label in CONFIG_LABELS],
            rows,
            title=(
                "Figure 9 (reproduced): bus busy % as 'L1-L2/L2-mem' per config"
            ),
        )
    )
    print(
        "Paper expectation: prefetching raises L1-L2 traffic; on sis the "
        "no-confidence configs waste several times more bandwidth."
    )
    for name in workload_names():
        base_l1l2 = util[name]["Base"][0]
        assert util[name]["ConfAlloc-Priority"][0] >= base_l1l2 - 0.02
    # sis: two-miss allocation burns more bus than confidence allocation.
    assert util["sis"]["2Miss-RR"][0] > util["sis"]["ConfAlloc-Priority"][0]
