"""Figure 6: prefetch accuracy (prefetches used / prefetches made).

Expected shape: following the predictor stream (PSB) raises accuracy
over fixed-stride streaming on the pointer programs, and confidence
allocation prevents the accuracy collapse on sis.
"""

from _shared import CONFIG_LABELS, run

from repro.analysis.report import ascii_table
from repro.workloads import workload_names

_PREFETCHERS = [label for label in CONFIG_LABELS if label != "Base"]


def test_fig06_prefetch_accuracy(benchmark):
    def experiment():
        return {
            name: {
                label: run(name, label).prefetch_accuracy
                for label in _PREFETCHERS
            }
            for name in workload_names()
        }

    accuracy = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name] + [f"{accuracy[name][label] * 100:.0f}%" for label in _PREFETCHERS]
        for name in workload_names()
    ]
    print()
    print(
        ascii_table(
            ["program"] + list(_PREFETCHERS),
            rows,
            title="Figure 6 (reproduced): prefetch accuracy (used / issued)",
        )
    )
    print(
        "Paper expectation: PSB with confidence raises accuracy over "
        "stride on pointer programs (~2x for deltablue); sis accuracy "
        "collapses without confidence."
    )
    for name in workload_names():
        for label in _PREFETCHERS:
            assert 0.0 <= accuracy[name][label] <= 1.0
    # deltablue: the predictor-directed stream buffer delivers far more
    # *useful* prefetches than fixed-stride streaming at comparable
    # accuracy.  (The stride machine can only follow deltablue's small
    # stride component, so its accuracy ratio is computed over a tiny
    # volume — coverage is the meaningful comparison.)
    psb_run = run("deltablue", "ConfAlloc-Priority")
    stride_run = run("deltablue", "Stride")
    assert psb_run.prefetches_used > 2 * stride_run.prefetches_used
    assert accuracy["deltablue"]["ConfAlloc-Priority"] > 0.5
    # sis: confidence allocation keeps accuracy well above two-miss
    # (a multiplicative claim: the absolute numbers shrink with run
    # length as the thrash window grows).
    assert (
        accuracy["sis"]["ConfAlloc-Priority"]
        > 1.4 * accuracy["sis"]["2Miss-RR"]
    )
