"""Figure 5: percent speedup over the no-prefetch baseline.

The paper compares PC-stride stream buffers ("Stride") against four PSB
variants crossing the allocation filter (two-miss vs confidence) with
the scheduler (round-robin vs priority), on all six benchmarks.

Expected shape (Section 6): PSB beats Stride substantially on the
pointer programs; on the FORTRAN program the two are comparable;
confidence allocation is what rescues burg and sis.
"""

from _shared import CONFIG_LABELS, POINTER_PROGRAMS, run, speedup

from repro.analysis.report import ascii_table
from repro.workloads import workload_names

_PREFETCHERS = [label for label in CONFIG_LABELS if label != "Base"]


def test_fig05_speedup_over_base(benchmark):
    def experiment():
        return {
            name: {label: speedup(name, label) for label in _PREFETCHERS}
            for name in workload_names()
        }

    speedups = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = [
        [name] + [f"{speedups[name][label]:+.1f}%" for label in _PREFETCHERS]
        for name in workload_names()
    ]
    averages = {
        label: sum(speedups[name][label] for name in POINTER_PROGRAMS)
        / len(POINTER_PROGRAMS)
        for label in _PREFETCHERS
    }
    rows.append(
        ["pointer-avg"] + [f"{averages[label]:+.1f}%" for label in _PREFETCHERS]
    )
    print()
    print(
        ascii_table(
            ["program"] + list(_PREFETCHERS),
            rows,
            title="Figure 5 (reproduced): % speedup over baseline IPC",
        )
    )
    print(
        "Paper expectation: PSB >> Stride on pointer programs; "
        "PSB ~ Stride on turb3d; confidence rescues sis."
    )

    # PSB (best variant) beats Stride on every pointer program.
    for name in POINTER_PROGRAMS:
        best_psb = max(
            speedups[name][label]
            for label in _PREFETCHERS
            if label != "Stride"
        )
        assert best_psb >= speedups[name]["Stride"] - 1.0, name

    # On the FORTRAN program PSB and Stride are comparable.
    turb = speedups["turb3d"]
    assert abs(turb["2Miss-RR"] - turb["Stride"]) < 15.0

    # The headline: PSB's pointer-program average clearly beats both the
    # baseline and the stride average.
    assert averages["ConfAlloc-Priority"] > 10.0
    assert averages["ConfAlloc-Priority"] > averages["Stride"]

    # sis: two-miss allocation thrashes; confidence repairs it.
    assert speedups["sis"]["ConfAlloc-Priority"] > speedups["sis"]["2Miss-RR"]
