"""Ablation C (Section 4.3): the confidence allocation threshold.

"Our results suggest that a threshold value of 1 is appropriate for our
benchmark suite."  This bench sweeps the threshold under the
ConfAlloc-Priority machine: a threshold of 0 admits unpredictable loads
(wasting buffers and bandwidth), while a high threshold starves
allocation.
"""

from _shared import MAX_INSTRUCTIONS, SEED, WARMUP_INSTRUCTIONS

from dataclasses import replace

from repro.analysis.report import ascii_table
from repro.sim import psb_config, simulate
from repro.workloads import get_workload

_THRESHOLDS = (0, 1, 3, 6)
_PROGRAMS = ("health", "sis")


def test_ablation_confidence_threshold(benchmark):
    def experiment():
        table = {}
        for name in _PROGRAMS:
            table[name] = {}
            for threshold in _THRESHOLDS:
                config = psb_config()
                stream_buffers = replace(
                    config.prefetch.stream_buffers,
                    confidence_threshold=threshold,
                )
                prefetch = replace(
                    config.prefetch, stream_buffers=stream_buffers
                )
                config = config.with_prefetcher(prefetch)
                result = simulate(
                    config,
                    get_workload(name, seed=SEED),
                    max_instructions=MAX_INSTRUCTIONS,
                    warmup_instructions=WARMUP_INSTRUCTIONS,
                    label=f"{name}/thresh-{threshold}",
                )
                table[name][threshold] = (result.ipc, result.prefetch_accuracy)
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    rows = []
    for name in _PROGRAMS:
        rows.append(
            [name]
            + [
                f"{table[name][t][0]:.3f}/{table[name][t][1] * 100:.0f}%"
                for t in _THRESHOLDS
            ]
        )
    print()
    print(
        ascii_table(
            ["program"] + [f"thresh={t}" for t in _THRESHOLDS],
            rows,
            title=(
                "Ablation C (reproduced): ConfAlloc-Priority IPC/accuracy "
                "vs allocation confidence threshold"
            ),
        )
    )
    print("Paper expectation: a threshold of 1 is appropriate.")
    for name in _PROGRAMS:
        best = max(table[name][t][0] for t in _THRESHOLDS)
        # Threshold 1 is within reach of the best setting.
        assert table[name][1][0] > best * 0.85, name
