"""Ablation D (Section 3): the prior prefetching models, head to head.

The paper surveys three families of hardware prefetchers and picks
decoupled stream buffers; within stream buffers it states that
Palacharla & Kessler's address-indexed minimum-delta scheme "was
uniformly outperformed by the per-load stride detector of Farkas et
al.".  This bench runs all the implemented models on a stride workload
and a pointer workload:

- next-line prefetching (Smith) — demand-based, sequential only;
- demand Markov prefetching (Joseph & Grunwald) — no chaining;
- Jouppi sequential stream buffers;
- Palacharla-Kessler minimum-delta stream buffers;
- Farkas PC-stride stream buffers;
- the paper's PSB (ConfAlloc-Priority).
"""

from _shared import MAX_INSTRUCTIONS, SEED, WARMUP_INSTRUCTIONS, run

from repro.analysis.report import ascii_table
from repro.sim import simulate
from repro.sim.presets import (
    demand_markov_config,
    min_delta_config,
    next_line_config,
    sequential_config,
)
from repro.workloads import get_workload

_PROGRAMS = ("turb3d", "health")
_EXTRA_MACHINES = {
    "NextLine": next_line_config,
    "DemandMarkov": demand_markov_config,
    "Jouppi": sequential_config,
    "MinDelta": min_delta_config,
}


def test_ablation_prior_prefetchers(benchmark):
    def experiment():
        table = {}
        for name in _PROGRAMS:
            base = run(name, "Base")
            rows = {}
            for label, maker in _EXTRA_MACHINES.items():
                result = simulate(
                    maker(),
                    get_workload(name, seed=SEED),
                    max_instructions=MAX_INSTRUCTIONS,
                    warmup_instructions=WARMUP_INSTRUCTIONS,
                    label=f"{name}/{label}",
                )
                rows[label] = (result.speedup_over(base), result.prefetch_accuracy)
            for label in ("Stride", "ConfAlloc-Priority"):
                result = run(name, label)
                rows[label] = (result.speedup_over(base), result.prefetch_accuracy)
            table[name] = rows
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)
    machines = list(_EXTRA_MACHINES) + ["Stride", "ConfAlloc-Priority"]
    rows = []
    for name in _PROGRAMS:
        rows.append(
            [name]
            + [
                f"{table[name][m][0]:+.1f}%/{table[name][m][1] * 100:.0f}%"
                for m in machines
            ]
        )
    print()
    print(
        ascii_table(
            ["program"] + machines,
            rows,
            title=(
                "Ablation D (reproduced): prior prefetchers, "
                "speedup/accuracy per machine"
            ),
        )
    )
    print(
        "Paper expectation: min-delta <= PC-stride (uniformly) and the "
        "PSB leads on pointer code; demand-based models trail decoupled "
        "stream buffers on the pointer chase."
    )
    # On the pointer chase, the per-load detector's advantage over the
    # region-based minimum-delta is decisive (on the pure-stride code the
    # two are close — min-delta's always-ready allocation even ramps a
    # little faster here, a smaller gap than the paper's "uniform" win).
    assert table["health"]["Stride"][0] > table["health"]["MinDelta"][0] + 10.0
    assert (
        table["turb3d"]["Stride"][0] >= table["turb3d"]["MinDelta"][0] - 10.0
    )
    # PSB leads everything on the pointer workload.
    best_prior = max(
        table["health"][m][0] for m in machines if m != "ConfAlloc-Priority"
    )
    assert table["health"]["ConfAlloc-Priority"][0] > best_prior
